"""Launch tracing: nested spans over the simulated query stack.

Every claim in the paper's evaluation (§6) is derived from traversal
counters — BVH nodes visited, IS invocations, rays launched — so the
execution path must be *inspectable* at the same granularity the
performance model prices. A :class:`Tracer` records a tree of
:class:`Span` objects (query → phase → shard → launch → traversal),
each carrying:

- wall-clock duration (``perf_counter`` based, diagnostic only);
- simulated time, when the producing phase prices one;
- per-launch traversal-counter *deltas* (nodes visited, IS invocations,
  results emitted), measured around the instrumented region.

Tracing is strictly read-only over the execution: spans observe counters
that are recorded anyway, so pairs, per-ray stats and simulated times
are bit-identical with tracing on or off (enforced by
``tests/core/test_trace_equivalence.py``).

When tracing is off the hooks see :data:`NULL_TRACER`, whose ``span``
returns a shared no-op context manager and whose ``enabled`` flag lets
hot paths skip delta bookkeeping entirely — the disabled cost is one
attribute check per instrumented region (never per ray).

Thread model: each thread keeps its own current-span stack, so nested
``with tracer.span(...)`` blocks attach to the nearest enclosing span
*of the same thread*. Work dispatched to pool threads (shard execution)
passes the parent span explicitly; child-span registration is
lock-protected.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Iterator

from repro.lockorder import make_lock


class Span:
    """One timed region of the execution, with children."""

    __slots__ = (
        "name",
        "t_start",
        "t_end",
        "sim_time",
        "counters",
        "attrs",
        "children",
    )

    def __init__(self, name: str, attrs: dict[str, Any] | None = None):
        self.name = name
        self.t_start: float = 0.0
        self.t_end: float = 0.0
        #: Simulated seconds attributed to this span (None = unpriced).
        self.sim_time: float | None = None
        #: Traversal-counter deltas recorded around this span.
        self.counters: dict[str, int] = {}
        self.attrs: dict[str, Any] = dict(attrs or {})
        self.children: list["Span"] = []

    @property
    def wall_time(self) -> float:
        """Wall-clock seconds spent inside the span."""
        return max(0.0, self.t_end - self.t_start)

    def find(self, name: str) -> "Span | None":
        """Depth-first search for the first descendant named ``name``."""
        for child in self.children:
            if child.name == name:
                return child
            hit = child.find(name)
            if hit is not None:
                return hit
        return None

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def total_counter(self, key: str) -> int:
        """Sum a counter over this span; falls back to summing children
        when the span itself recorded no delta for ``key`` (a parent's
        own delta already includes its children's work)."""
        if key in self.counters:
            return int(self.counters[key])
        return int(sum(c.total_counter(key) for c in self.children))

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly view of the span tree."""
        d: dict[str, Any] = {"name": self.name, "wall_time": self.wall_time}
        if self.sim_time is not None:
            d["sim_time"] = self.sim_time
        if self.counters:
            d["counters"] = {k: int(v) for k, v in self.counters.items()}
        if self.attrs:
            d["attrs"] = dict(self.attrs)
        if self.children:
            d["children"] = [c.to_dict() for c in self.children]
        return d

    def pretty(self, indent: int = 0) -> str:
        """Human-readable one-line-per-span rendering."""
        bits = [f"{'  ' * indent}{self.name}  wall={self.wall_time * 1e3:.3f}ms"]
        if self.sim_time is not None:
            bits.append(f"sim={self.sim_time * 1e3:.4f}ms")
        if self.counters:
            bits.append(" ".join(f"{k}={v}" for k, v in sorted(self.counters.items())))
        lines = [" ".join(bits)]
        lines.extend(c.pretty(indent + 1) for c in self.children)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, wall={self.wall_time:.6f}s, "
            f"children={len(self.children)})"
        )


class _SpanContext:
    """Context manager entering/exiting one live span."""

    __slots__ = ("_tracer", "_span", "_parent_explicit")

    def __init__(self, tracer: "Tracer", span: Span, parent: Span | None):
        self._tracer = tracer
        self._span = span
        self._parent_explicit = parent

    def __enter__(self) -> Span:
        tr = self._tracer
        sp = self._span
        stack = tr._stack()
        parent = self._parent_explicit if self._parent_explicit is not None else (
            stack[-1] if stack else None
        )
        with tr._lock:
            if parent is not None:
                parent.children.append(sp)
            else:
                tr.roots.append(sp)
        stack.append(sp)
        sp.t_start = tr.clock()
        return sp

    def __exit__(self, *exc) -> None:
        sp = self._span
        sp.t_end = self._tracer.clock()
        stack = self._tracer._stack()
        if stack and stack[-1] is sp:
            stack.pop()
        return None


class _NullSpan(Span):
    """The shared span handed out by the no-op tracer: mutating it is
    allowed (hooks may set attributes unconditionally) and discarded."""

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def to_dict(self) -> dict[str, Any]:
        return {}


class NullTracer:
    """Zero-overhead stand-in used when tracing is disabled.

    ``span`` hands back a shared inert span that is its own context
    manager; ``enabled`` is False so hot paths can skip counter-delta
    snapshots entirely.
    """

    enabled = False
    __slots__ = ("_span",)

    def __init__(self):
        self._span = _NullSpan("null")

    def span(self, name: str, parent: Span | None = None, **attrs):
        return self._span

    def current(self) -> Span | None:
        return None

    def to_dict(self) -> dict[str, Any]:
        return {}

    def __repr__(self) -> str:
        return "NullTracer()"


#: The module-wide disabled tracer (one shared instance; hooks treat a
#: ``None`` tracer argument as this).
NULL_TRACER = NullTracer()


class Tracer:
    """Records a forest of nested spans over query execution.

    Parameters
    ----------
    clock:
        Wall-clock source (``time.perf_counter`` by default; tests inject
        a fake for deterministic durations).
    """

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self.clock = clock
        self.roots: list[Span] = []
        # Rank 45 (leaf): guards child-span registration only.
        self._lock = make_lock("obs.tracer")
        self._local = threading.local()

    # -- span plumbing -----------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, parent: Span | None = None, **attrs) -> _SpanContext:
        """Open a nested span.

        Used as ``with tracer.span("forward_cast") as sp:``. The parent
        is the innermost open span of the calling thread unless given
        explicitly (pool workers pass the dispatching span).
        """
        return _SpanContext(self, Span(name, attrs), parent)

    def current(self) -> Span | None:
        """The innermost open span of the calling thread."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- inspection --------------------------------------------------------

    @property
    def last(self) -> Span | None:
        """The most recently opened root span."""
        return self.roots[-1] if self.roots else None

    def find(self, name: str) -> Span | None:
        """First span named ``name`` anywhere in the forest."""
        for root in self.roots:
            if root.name == name:
                return root
            hit = root.find(name)
            if hit is not None:
                return hit
        return None

    def spans(self) -> Iterator[Span]:
        """Every recorded span, depth first across roots."""
        for root in self.roots:
            yield from root.walk()

    def clear(self) -> None:
        self.roots = []

    def to_dict(self) -> dict[str, Any]:
        return {"spans": [r.to_dict() for r in self.roots]}

    def to_json(self, path=None, **dump_kwargs) -> str:
        """Serialize the span forest; optionally also write it to a file."""
        text = json.dumps(self.to_dict(), **dump_kwargs)
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text)
        return text

    def pretty(self) -> str:
        return "\n".join(r.pretty() for r in self.roots)

    def __repr__(self) -> str:
        return f"Tracer(roots={len(self.roots)})"


def counter_snapshot(stats) -> tuple[int, int, int]:
    """Cheap totals snapshot of a :class:`TraversalStats` used to compute
    span deltas (three array sums; only taken when tracing is enabled)."""
    return (
        int(stats.nodes_visited.sum()),
        int(stats.is_invocations.sum()),
        int(stats.results_emitted.sum()),
    )


def record_delta(span: Span, before: tuple[int, int, int], stats) -> None:
    """Store the counter delta accumulated between ``before`` and now."""
    after = counter_snapshot(stats)
    span.counters = {
        "nodes_visited": after[0] - before[0],
        "is_invocations": after[1] - before[1],
        "results_emitted": after[2] - before[2],
    }
