"""Parallel query execution substrate.

The paper's CPU baselines distribute read-only queries evenly across all
cores (§6.1). The *simulated* times already model that division of work;
this package provides the real thing for wall-clock speedups on
multicore hosts: a chunked executor that shards a query batch, runs
shards concurrently on a shared thread pool, and merges results in
canonical query-major order. :class:`~repro.core.index.RTSIndex` plumbs
it through every predicate via the ``parallel`` / ``n_workers`` knobs.
"""

from repro.parallel.executor import (
    MIN_SHARD_SIZE,
    SHARDS_PER_WORKER,
    ChunkedExecutor,
    default_workers,
    plan_shards,
    shard_queries,
    shared_pool,
)

__all__ = [
    "ChunkedExecutor",
    "shard_queries",
    "plan_shards",
    "shared_pool",
    "default_workers",
    "MIN_SHARD_SIZE",
    "SHARDS_PER_WORKER",
]
