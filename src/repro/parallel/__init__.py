"""Parallel query execution substrate.

The paper's CPU baselines distribute read-only queries evenly across all
cores (§6.1). The *simulated* times already model that division of work;
this package provides the real thing for users who want wall-clock
speedups on multicore hosts: a chunked executor that shards a query
batch, runs shards concurrently, and merges results in canonical order.
"""

from repro.parallel.executor import ChunkedExecutor, shard_queries

__all__ = ["ChunkedExecutor", "shard_queries"]
