"""Chunked parallel execution of read-only query batches.

Spatial queries are embarrassingly parallel over the query set (the
paper exploits exactly this to scale CPU baselines to 128 cores). The
executor shards a batch, maps a query function over shards with a thread
pool — NumPy releases the GIL inside its kernels, so threads scale — and
merges the per-shard pair lists back into canonical order with correct
global query ids.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

import numpy as np


def shard_queries(n: int, n_shards: int) -> list[np.ndarray]:
    """Split query indices [0, n) into up to ``n_shards`` even,
    contiguous shards (contiguity keeps each shard cache-friendly)."""
    n_shards = max(1, min(n_shards, n)) if n else 1
    return [s for s in np.array_split(np.arange(n, dtype=np.int64), n_shards) if len(s)]


class ChunkedExecutor:
    """Run a pair-producing query function over query shards in parallel.

    ``fn(queries_subset)`` must return ``(rect_ids, local_query_ids)``
    where local ids index the subset; the executor rebases them.
    """

    def __init__(self, n_workers: int = 8):
        self.n_workers = int(n_workers)

    def run(
        self,
        fn: Callable,
        queries: Sequence | np.ndarray,
        take: Callable | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Execute ``fn`` over shards of ``queries``.

        ``take(queries, idx)`` extracts a shard (defaults to numpy
        indexing, which also works for :class:`~repro.geometry.boxes.Boxes`).
        """
        n = len(queries)
        if take is None:
            take = lambda q, idx: q[idx]
        shards = shard_queries(n, self.n_workers)
        if len(shards) <= 1:
            r, q = fn(queries)
            return self._canonical(r, q)

        def work(idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            r, local = fn(take(queries, idx))
            return np.asarray(r, dtype=np.int64), idx[np.asarray(local, dtype=np.int64)]

        with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
            parts = list(pool.map(work, shards))
        rects = np.concatenate([p[0] for p in parts]) if parts else np.empty(0, np.int64)
        qids = np.concatenate([p[1] for p in parts]) if parts else np.empty(0, np.int64)
        return self._canonical(rects, qids)

    @staticmethod
    def _canonical(rects: np.ndarray, qids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        order = np.lexsort((qids, rects))
        return np.asarray(rects, dtype=np.int64)[order], np.asarray(qids, dtype=np.int64)[order]
