"""Chunked parallel execution of read-only query batches.

Spatial queries are embarrassingly parallel over the query set (the
paper exploits exactly this to scale CPU baselines to 128 cores). The
executor shards a batch, maps a query function over shards with a
module-level reusable thread pool — NumPy releases the GIL inside its
kernels, so threads scale — and merges the per-shard pair lists back
into canonical query-major order with correct global query ids.

Shard sizing is adaptive: large batches are split into ~4 shards per
worker so the pool can balance uneven per-query work, while batches
below a minimum size stay serial (sharding overhead would dominate).
Pools are keyed by worker count and reused across queries; constructing
a :class:`ChunkedExecutor` is cheap and never spawns threads by itself.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

import numpy as np

from repro.canonical import canonical_pairs
from repro.lockorder import make_lock

#: Batches smaller than this are never sharded — per-shard bookkeeping
#: would outweigh any traversal overlap on such small launches.
MIN_SHARD_SIZE = 1024

#: Target shards per worker. More shards than workers lets the pool
#: rebalance when per-query work is skewed (the paper's load-imbalance
#: regime), at slightly higher merge cost.
SHARDS_PER_WORKER = 4

_pools: dict[int, ThreadPoolExecutor] = {}
_pool_refs: dict[int, int] = {}
# Rank 60 (leaf): pool bookkeeping may run under any other subsystem's
# lock but never calls back out while held. Created at import time, so
# REPRO_LOCK_ORDER only covers it when set before the first import.
_pools_lock = make_lock("parallel.pools")


def shared_pool(n_workers: int) -> ThreadPoolExecutor:
    """The module-level thread pool for ``n_workers``-wide execution.

    Pools are created lazily, keyed by width, and reused for the life of
    the process, so per-query executor use never pays pool construction.
    """
    n_workers = max(1, int(n_workers))
    with _pools_lock:
        pool = _pools.get(n_workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=n_workers, thread_name_prefix=f"repro-shard{n_workers}"
            )
            _pools[n_workers] = pool
        return pool


def _acquire_pool(n_workers: int) -> None:
    """Register one owner of the ``n_workers``-wide shared pool."""
    n_workers = max(1, int(n_workers))
    with _pools_lock:
        _pool_refs[n_workers] = _pool_refs.get(n_workers, 0) + 1


def _release_pool(n_workers: int) -> None:
    """Drop one ownership reference; the last owner shuts the pool down.

    Shutdown is non-blocking and never cancels queued work, so a racing
    anonymous :func:`shared_pool` user finishes cleanly and simply gets a
    fresh pool on its next call.
    """
    n_workers = max(1, int(n_workers))
    with _pools_lock:
        refs = _pool_refs.get(n_workers, 0) - 1
        if refs > 0:
            _pool_refs[n_workers] = refs
            return
        _pool_refs.pop(n_workers, None)
        pool = _pools.pop(n_workers, None)
    if pool is not None:
        pool.shutdown(wait=False)


def default_workers() -> int:
    """Worker count used when the caller does not pin one."""
    return os.cpu_count() or 1


def shard_queries(n: int, n_shards: int) -> list[np.ndarray]:
    """Split query indices [0, n) into up to ``n_shards`` even,
    contiguous shards (contiguity keeps each shard cache-friendly)."""
    n_shards = max(1, min(n_shards, n)) if n else 1
    return [s for s in np.array_split(np.arange(n, dtype=np.int64), n_shards) if len(s)]


def plan_shards(
    n: int,
    n_workers: int,
    *,
    shards_per_worker: int = SHARDS_PER_WORKER,
    min_shard_size: int = MIN_SHARD_SIZE,
) -> list[np.ndarray]:
    """Static shard plan for a batch of ``n`` queries (rule-of-thumb).

    Targets ``shards_per_worker`` shards per worker for load balance, but
    never cuts shards below ``min_shard_size`` queries; batches too small
    to fill two minimum shards run serially as a single shard. The
    adaptive planner (:mod:`repro.plan`) replaces this heuristic with the
    cost-priced :func:`cost_priced_shards` on planned queries.
    """
    if n_workers <= 1 or n < 2 * min_shard_size:
        return shard_queries(n, 1)
    n_shards = min(n_workers * shards_per_worker, n // min_shard_size)
    return shard_queries(n, max(1, n_shards))


def cost_priced_shards(
    n: int,
    n_workers: int,
    *,
    per_query_s: float | None = None,
    shard_overhead_s: float | None = None,
    max_shards_per_worker: int = 8,
) -> int:
    """Shard count minimising modeled host wall time for ``n`` queries.

    The model prices exactly what sharding trades: per-query host work
    parallelises across ``n_workers`` (NumPy drops the GIL in its
    kernels), while every shard pays a fixed dispatch-and-merge overhead.
    Modeled wall time for ``s`` shards is::

        ceil(s / workers) * (ceil(n / s) * per_query + overhead) + merge

    evaluated over the candidate ladder {1, w, 2w, 4w, 8w}; the cheapest
    wins, ties to fewer shards. Results are shard-invariant by the
    parallel-equivalence contract, so this only moves wall-clock time.
    """
    if per_query_s is None:
        from repro.perfmodel import calibration as C

        per_query_s = C.HOST_PER_QUERY_S
    if shard_overhead_s is None:
        from repro.perfmodel import calibration as C

        shard_overhead_s = C.HOST_SHARD_OVERHEAD_S
    if n <= 1 or n_workers <= 1:
        return 1
    best_s, best_t = 1, float(n) * per_query_s
    s = n_workers
    while s <= n_workers * max_shards_per_worker:
        if s > n:
            break
        waves = -(-s // n_workers)
        per_shard = -(-n // s) * per_query_s + shard_overhead_s
        t = waves * per_shard + shard_overhead_s  # + final merge
        if t < best_t:
            best_s, best_t = s, t
        s *= 2
    return best_s


#: Minimum rows per process shard: below this the per-task dispatch tax
#: outweighs any launch-splitting win, so the batch stays whole.
MIN_PROC_SHARD = 256


def process_priced_shards(
    n: int,
    n_workers: int,
    est_cast_s: float,
    *,
    launch_overhead_s: float | None = None,
    dispatch_s: float | None = None,
    min_shard: int = MIN_PROC_SHARD,
) -> int:
    """Shard count minimising modeled *simulated* latency for one launch
    fanned across ``n_workers`` worker processes.

    Unlike :func:`cost_priced_shards` (which prices host wall time for
    thread shards), this prices the simulated device time of the
    process-sharded launch: the cast work divides across shards, but
    every shard pays the full launch overhead again plus the process
    dispatch tax. Modeled simulated latency for ``s`` shards is::

        (est_cast - launch_overhead) / s + launch_overhead + dispatch

    (shards run concurrently, one per worker — the makespan is one
    shard's time). Splitting only pays when the batch's cast work
    dominates the launch overhead; overhead-bound micro-batches stay at
    ``s = 1`` and scale through wave dispatch instead. The candidate
    ladder is powers of two up to ``n_workers``, floored by
    ``min_shard`` rows per shard; ties go to fewer shards. Results are
    shard-invariant by the parallel-equivalence contract, so this only
    moves simulated latency, never answers.
    """
    if launch_overhead_s is None or dispatch_s is None:
        from repro.perfmodel import calibration as C

        if launch_overhead_s is None:
            launch_overhead_s = C.GPU_LAUNCH_OVERHEAD
        if dispatch_s is None:
            dispatch_s = C.PROC_DISPATCH_SIM_S
    if n <= 1 or n_workers <= 1:
        return 1
    work = max(est_cast_s - launch_overhead_s, 0.0)
    best_s, best_t = 1, work + launch_overhead_s + dispatch_s
    s = 2
    while s <= n_workers:
        if n // s < min_shard:
            break
        t = work / s + launch_overhead_s + dispatch_s
        if t < best_t:
            best_s, best_t = s, t
        s *= 2
    return best_s


class ChunkedExecutor:
    """Run query work over shards of a batch on the shared thread pool.

    The executor carries only a worker count and the shard-sizing knobs;
    the pool itself is module-level and shared, so instances are cheap to
    create per index or per call.
    """

    def __init__(
        self,
        n_workers: int | None = None,
        *,
        shards_per_worker: int = SHARDS_PER_WORKER,
        min_shard_size: int = MIN_SHARD_SIZE,
        shard_plan: Callable[[int, int], int] | None = None,
    ):
        if n_workers is not None and int(n_workers) < 1:
            raise ValueError(
                f"n_workers must be >= 1, got {n_workers} (use None for all cores)"
            )
        self.n_workers = int(n_workers) if n_workers is not None else default_workers()
        self.shards_per_worker = int(shards_per_worker)
        self.min_shard_size = int(min_shard_size)
        #: Optional cost-priced override: ``shard_plan(n, n_workers)``
        #: returns a shard count, replacing the static heuristic (used by
        #: repro.plan; results are shard-invariant either way).
        self.shard_plan = shard_plan
        self._owns_pool = False
        self._closed = False

    def _pool(self) -> ThreadPoolExecutor:
        """The shared pool, acquiring ownership on first concurrent use so
        :meth:`close` knows a reference must be released."""
        if self._closed:
            raise RuntimeError("ChunkedExecutor is closed")
        if not self._owns_pool:
            _acquire_pool(self.n_workers)
            self._owns_pool = True
        return shared_pool(self.n_workers)

    def close(self) -> None:
        """Release this executor's pool reference (idempotent).

        The last owner of a width shuts its pool down and removes it from
        the module registry, so sweeping worker counts (a bench run, an
        index whose ``n_workers`` changes mid-session) does not strand one
        idle thread pool per width for the life of the process.
        """
        if self._closed:
            return
        self._closed = True
        if self._owns_pool:
            self._owns_pool = False
            _release_pool(self.n_workers)

    def __enter__(self) -> "ChunkedExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def plan(self, n: int) -> list[np.ndarray]:
        """The shard plan (global query-index arrays) for ``n`` queries."""
        if self.shard_plan is not None:
            return shard_queries(n, max(1, int(self.shard_plan(n, self.n_workers))))
        return plan_shards(
            n,
            self.n_workers,
            shards_per_worker=self.shards_per_worker,
            min_shard_size=self.min_shard_size,
        )

    def map(
        self,
        work: Callable,
        shards: Sequence[np.ndarray],
        tracer=None,
        parent=None,
        span_name: str = "shard",
    ) -> list:
        """Apply ``work(shard_indices)`` to every shard, concurrently when
        there is more than one shard; results keep shard order.

        When a ``tracer`` is given, each shard dispatch is recorded as a
        ``span_name`` span under ``parent`` (pool threads have no open
        span of their own, so the parent must be explicit). Tracing is
        observation only: shard planning, ordering and results are
        unchanged.
        """
        if tracer is not None and tracer.enabled:
            def traced(item):
                i, s = item
                with tracer.span(span_name, parent=parent, shard=i, n_queries=len(s)):
                    return work(s)

            items = list(enumerate(shards))
            if len(items) <= 1:
                return [traced(item) for item in items]
            return list(self._pool().map(traced, items))
        if len(shards) <= 1:
            return [work(s) for s in shards]
        return list(self._pool().map(work, shards))

    def run(
        self,
        fn: Callable,
        queries: Sequence | np.ndarray,
        take: Callable | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Execute a pair-producing ``fn`` over shards of ``queries``.

        ``fn(queries_subset)`` must return ``(rect_ids, local_query_ids)``
        where local ids index the subset; the executor rebases them.
        ``take(queries, idx)`` extracts a shard (defaults to numpy
        indexing, which also works for :class:`~repro.geometry.boxes.Boxes`).
        """
        n = len(queries)
        if take is None:
            def take(q, idx):
                return q[idx]
        shards = shard_queries(n, self.n_workers)
        if len(shards) <= 1:
            r, q = fn(queries)
            return self._canonical(r, q)

        def work(idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            r, local = fn(take(queries, idx))
            return np.asarray(r, dtype=np.int64), idx[np.asarray(local, dtype=np.int64)]

        parts = self.map(work, shards)
        rects = np.concatenate([p[0] for p in parts]) if parts else np.empty(0, np.int64)
        qids = np.concatenate([p[1] for p in parts]) if parts else np.empty(0, np.int64)
        return self._canonical(rects, qids)

    @staticmethod
    def _canonical(rects: np.ndarray, qids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        # Query-major: primary key query id, secondary key rect id — the
        # canonical pair order documented in docs/PERFMODEL.md.
        return canonical_pairs(rects, qids)
