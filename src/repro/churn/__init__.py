"""``repro.churn`` — LSM-style high-churn write path for the RTS index.

The paper's update story (§4.2, Figure 10c) is a tension: refits are
cheap but degrade BVH quality until queries slow ~2.4x; rebuilds restore
quality but stop the world. :class:`ChurnIndex` automates that tradeoff
the way LSM trees do for ordered storage:

- **writes** land in small *delta* GASes (inserts) and a *tombstone set*
  (deletes/updates of main-resident rectangles) — the main structure is
  never refit, so its quality never degrades in place;
- **reads** fan out over main+delta through the ordinary two-level IAS
  traversal, with tombstone filtering in the exact IS-shader predicates
  and a stable public-id remap at emission, so responses are
  bit-identical to a monolithic index over the same live set;
- a **compactor** folds the delta back into one fresh main build when a
  trigger fires: delta-size ratio, cumulative delta-refit wear, or
  observed traversal drift (``nodes_visited``/ray vs the clean baseline
  from the :mod:`repro.obs` counters) priced against the rebuild cost by
  :mod:`repro.perfmodel.compaction`.

:class:`BackgroundCompactor` runs that trigger loop against a
:class:`~repro.serve.SpatialQueryService` (enabled with
``ServiceConfig(churn=...)``): each compaction publishes atomically as a
new epoch snapshot while readers keep replaying their pinned epoch.

See docs/DESIGN.md §13 and docs/API.md ("Churn") for the full contract.
"""

from repro.churn.compactor import BackgroundCompactor
from repro.churn.index import ChurnConfig, ChurnIndex, ChurnState

__all__ = ["ChurnIndex", "ChurnConfig", "ChurnState", "BackgroundCompactor"]
