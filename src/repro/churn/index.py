"""The churn index: delta GASes + tombstones over a refit-free main.

:class:`ChurnIndex` subclasses :class:`~repro.core.index.RTSIndex` and
reinterprets its batch machinery as an LSM split: the first
``_main_batches`` GASes are the *main* structure and every later batch
is *delta*. The three write paths then become:

- **insert** — the batch lands as a fresh delta GAS through the ordinary
  base path (that path is already O(batch)).
- **delete of a main-resident rectangle** — a *tombstone*: the global
  view buffers are degenerated (so exact IS-shader predicates and
  ``live_ids`` drop the slot immediately) but the main GAS keeps its
  stale geometry and is **never refit**. Rays keep traversing the stale
  AABB until compaction; that wasted traversal is precisely the drift
  the compactor watches. Delta-resident deletes use the native
  degenerate-and-refit path — delta GASes are small, so refits there
  are cheap and their wear is bounded by the refit-wear trigger.
- **update** — delta-resident slots refit natively; main-resident (and
  long-gone) slots tombstone the old geometry and re-insert the new
  coordinates as delta, preserving the public id.

Public ids survive compaction through one indirection pair:
``_canon_id`` maps internal slots to public ids (exposed to the query
kernels via the ``_remap`` hook, applied at result emission), and
``_pub_slot`` maps public ids back to their current internal slot.
Queries run the inherited main+delta IAS fan-out, so per-instance
counters merge exactly like shard merges, and responses are
bit-identical to a monolithic index over the live set
(:meth:`to_monolithic` — see the equivalence contract below).

**Equivalence contract** (enforced by ``tests/churn``): at *every*
epoch, pairs, k-resolution and ``results_emitted`` (plus the whole
backward pass of Range-Intersects) are bit-identical to the compacted
reference. Forward-side ``nodes_visited``/``is_invocations`` agree at
every *compacted* epoch and drift upward between compactions — by
design: that divergence is the signal, not an error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import tsan
from repro.core.index import OpRecord, RTSIndex, _coerce_boxes
from repro.geometry.boxes import Boxes
from repro.lockorder import make_lock
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.perfmodel.compaction import compaction_build_cost, priced_drift_decision
from repro.rtcore.bvh import readonly_view as _readonly
from repro.rtcore.gas import GeometryAS
from repro.rtcore.ias import InstanceAS


@dataclass(frozen=True)
class ChurnConfig:
    """Compaction-trigger policy for a :class:`ChurnIndex`.

    The first two triggers are unconditional safety caps; the third is
    the priced decision (:mod:`repro.perfmodel.compaction`).
    """

    #: Fire when churn debt — live delta slots plus main tombstones —
    #: exceeds this fraction of the live set (LSM size-ratio trigger).
    delta_ratio_max: float = 0.5
    #: Fire when cumulative delta-GAS refits since the last compaction
    #: exceed this count (the §4.2 refit-quality wear cap).
    refit_wear_max: int = 64
    #: Minimum observed traversal drift (live nodes/ray over the clean
    #: baseline) before the priced drift decision is even evaluated.
    drift_threshold: float = 1.15
    #: Future queries the compaction build cost is amortized over in the
    #: priced drift decision.
    horizon: int = 512
    #: Drifted-state query observations required before the drift
    #: trigger may fire (EWMAs need samples to mean anything).
    min_observations: int = 8
    #: EWMA smoothing factor for the drift/cost observations.
    alpha: float = 0.3
    #: Background compactor poll interval in seconds.
    poll_interval: float = 0.002

    def __post_init__(self):
        if not 0.0 < self.delta_ratio_max:
            raise ValueError("delta_ratio_max must be positive")
        if self.refit_wear_max < 1:
            raise ValueError("refit_wear_max must be >= 1")
        if self.drift_threshold < 1.0:
            raise ValueError("drift_threshold must be >= 1.0")
        if self.horizon < 0:
            raise ValueError("horizon must be >= 0")
        if self.min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if self.poll_interval <= 0.0:
            raise ValueError("poll_interval must be positive")


@tsan.instrument("query_s", "n_clean", "n_live",
                 containers=("clean_npr", "live_npr"))
class ChurnState:
    """Drift EWMAs shared across an index and all its forks.

    ``repro.serve`` mutates by forking the current snapshot, so any
    state that must accumulate *across* epochs has to be shared by
    reference, exactly like the metrics registry. Guarded by the
    ``churn.state`` lock (rank 38 — see :mod:`repro.lockorder`): the
    compactor and the planner both read it while holding their own
    locks, and queries write it at result-record time.

    Two traversal-quality EWMAs are kept per predicate: ``clean`` is
    updated only while the structure is clean (single main GAS, no
    tombstones, no delta-refit wear — i.e. at seed and right after a
    compaction) and serves as the baseline; ``live`` always tracks the
    current level. Their ratio is the drift factor. The quality metric
    is nodes visited per ray *normalized by the ideal log2 depth of the
    live set* (:meth:`ChurnIndex._traversal_quality`): delta fan-out
    raises raw nodes/ray directly, while tombstones leave raw traversal
    flat but shrink the live set a clean structure would be built over —
    normalizing by the ideal depth registers both as drift. A per-query
    cast-time EWMA feeds the priced decision and the planner's fan-out
    pricing.
    """

    def __init__(self, alpha: float = 0.3):
        self.alpha = float(alpha)
        self.lock = make_lock("churn.state")
        self.clean_npr: dict[str, float] = {}
        self.live_npr: dict[str, float] = {}
        self.query_s: float | None = None
        self.n_clean = 0
        self.n_live = 0

    def _ewma(self, prev: float | None, x: float) -> float:
        return x if prev is None else (1.0 - self.alpha) * prev + self.alpha * x

    def observe(self, pred: str, nodes_per_ray: float, per_query_s: float, clean: bool) -> None:
        """Fold one query's traversal level into the EWMAs."""
        with self.lock:
            if clean:
                self.clean_npr[pred] = self._ewma(self.clean_npr.get(pred), nodes_per_ray)
                # A clean observation *is* the current live level.
                self.live_npr[pred] = self.clean_npr[pred]
                self.n_clean += 1
            else:
                self.live_npr[pred] = self._ewma(self.live_npr.get(pred), nodes_per_ray)
                self.n_live += 1
            self.query_s = self._ewma(self.query_s, per_query_s)

    def drift_factor(self) -> float:
        """Worst per-predicate live/clean nodes-per-ray ratio, >= 1."""
        with self.lock:
            worst = 1.0
            for pred, live in self.live_npr.items():
                clean = self.clean_npr.get(pred)
                if clean is not None and clean > 0.0:
                    worst = max(worst, live / clean)
            return worst

    def snapshot(self) -> dict:
        with self.lock:
            return {
                "clean_npr": dict(self.clean_npr),
                "live_npr": dict(self.live_npr),
                "query_s": self.query_s,
                "n_clean": self.n_clean,
                "n_live": self.n_live,
            }

    def reset(self) -> None:
        """Re-anchor after a compaction: the structure is clean again, so
        the live level snaps back to the baseline (which is kept — new
        clean observations keep refining it) and the drifted-observation
        count restarts."""
        with self.lock:
            self.live_npr = dict(self.clean_npr)
            self.n_live = 0


class ChurnIndex(RTSIndex):
    """A mutable index whose main structure is never refit.

    Accepts every :class:`~repro.core.index.RTSIndex` constructor
    argument plus ``churn`` (a :class:`ChurnConfig`). The mutation API
    speaks *public ids*: ``insert`` returns them, ``delete``/``update``
    take them, and they are stable across compactions even though the
    internal slot layout is rewritten. Query results report public ids.
    """

    def __init__(self, data=None, *, churn: ChurnConfig | None = None, **kwargs):
        # Churn bookkeeping must exist before the base constructor runs:
        # it may call our insert() override for the seed data.
        self.churn = churn if churn is not None else ChurnConfig()
        self._canon_id = np.empty(0, dtype=np.int64)
        self._pub_slot = np.empty(0, dtype=np.int64)
        self._main_batches = 0
        self._delta_refits = 0
        self._n_tombstones = 0
        self._state = ChurnState(alpha=self.churn.alpha)
        super().__init__(None, **kwargs)
        if data is not None:
            self.insert(data)
        # The seed is blessed as main: a freshly constructed index is
        # clean by definition, whatever batch count it arrived in.
        self._main_batches = self.n_batches

    @classmethod
    def from_index(cls, index: RTSIndex, *, churn: ChurnConfig | None = None) -> "ChurnIndex":
        """Wrap an existing plain index as a churn index.

        The wrap forks (copy-on-write, no BVH work), so the original is
        untouched; its current global ids become the public ids. Used by
        ``repro.serve`` to enable the churn write path over a seed index
        the caller built. Passing a :class:`ChurnIndex` just rebinds its
        config.
        """
        if isinstance(index, ChurnIndex):
            if churn is not None:
                index.churn = churn
            return index
        twin = index.fork()
        self = object.__new__(cls)
        self.__dict__.update(twin.__dict__)
        self.churn = churn if churn is not None else ChurnConfig()
        self._canon_id = np.arange(len(self), dtype=np.int64)
        self._pub_slot = np.arange(len(self), dtype=np.int64)
        self._main_batches = self.n_batches
        self._delta_refits = 0
        self._n_tombstones = 0
        self._state = ChurnState(alpha=self.churn.alpha)
        return self

    # -- structure split ---------------------------------------------------------

    @property
    def _remap(self):
        """Kernel-side emission remap: internal slot -> public id."""
        return self._canon_id

    @property
    def _main_cut(self) -> int:
        """First internal slot belonging to the delta (main/delta split
        point in slot space)."""
        return int(self._prefix[self._main_batches])

    @property
    def n_delta_batches(self) -> int:
        return self.n_batches - self._main_batches

    @property
    def is_clean(self) -> bool:
        """True when the structure equals its own compacted form: no
        delta batches, no tombstones, no delta-refit wear. Gates the
        clean-baseline EWMA in :class:`ChurnState`."""
        return (
            self.n_batches == self._main_batches
            and self._n_tombstones == 0
            and self._delta_refits == 0
        )

    def delta_fraction(self) -> float:
        """Churn debt — live delta slots plus main tombstones — as a
        fraction of the live set."""
        n_live = self.n_rects
        if n_live == 0:
            return 0.0
        delta_live = int((~self._deleted[self._main_cut:]).sum())
        return (delta_live + self._n_tombstones) / n_live

    def rt_traversal_factor(self) -> float:
        """Observed drift multiplier for the planner's RT estimate."""
        return self._state.drift_factor()

    def _gauges(self) -> None:
        m = self.metrics
        m.set_gauge("churn.delta_fraction", self.delta_fraction())
        m.set_gauge("churn.delta_batches", self.n_delta_batches)
        m.set_gauge("churn.tombstones", self._n_tombstones)
        m.set_gauge("churn.delta_refits", self._delta_refits)

    def describe(self) -> dict:
        out = super().describe()
        out["churn"] = {
            "main_batches": self._main_batches,
            "delta_batches": self.n_delta_batches,
            "tombstones": self._n_tombstones,
            "delta_refits": self._delta_refits,
            "delta_fraction": self.delta_fraction(),
            "drift_factor": self._state.drift_factor(),
            "clean": self.is_clean,
        }
        return out

    def __repr__(self) -> str:
        return (
            f"ChurnIndex(live={self.n_rects}, main_batches={self._main_batches}, "
            f"delta_batches={self.n_delta_batches}, tombstones={self._n_tombstones}, "
            f"ndim={self.ndim}, dtype={self.dtype})"
        )

    # -- public-id plumbing ------------------------------------------------------

    @property
    def n_public_ids(self) -> int:
        """Public ids ever issued (dense, append-only)."""
        return len(self._pub_slot)

    def _check_public(self, ids: np.ndarray) -> None:
        if len(ids) and (ids.min() < 0 or ids.max() >= len(self._pub_slot)):
            raise IndexError("public rectangle id out of range")

    def _append_slots(self, internal: np.ndarray, pub: np.ndarray) -> None:
        """Bind freshly inserted internal slots to public ids."""
        self._canon_id = np.concatenate([self._canon_id, pub])
        if pub.size and int(pub.max()) >= len(self._pub_slot):
            grown = np.concatenate(
                [
                    self._pub_slot,
                    np.full(int(pub.max()) + 1 - len(self._pub_slot), -1, dtype=np.int64),
                ]
            )
            self._pub_slot = grown
        self._pub_slot[pub] = internal

    def _tombstone(self, slots: np.ndarray) -> None:
        """Kill main-resident slots without touching the main GAS.

        Only the global view buffers change: exact predicates and
        ``live_ids`` stop reporting the slot immediately, while the main
        BVH keeps traversing the stale geometry until compaction. The
        z-flattened shadow IAS mirrors GAS geometry, which is untouched,
        so the cache stays valid. Priced at zero simulated seconds — the
        deferred cost surfaces as traversal drift, which is the point.
        """
        self._deleted[slots] = True
        self._mins[slots] = np.inf
        self._maxs[slots] = -np.inf
        self._n_tombstones += len(slots)

    def _collapse_ops(self, start: int, op: str, count: int) -> None:
        """Fold the base-path sub-records of one composite churn mutation
        into a single :class:`OpRecord`, so per-op accounting (Figure
        10c's update costs) sees churn ops, not their internals."""
        added = self.op_log[start:]
        sim = float(sum(r.sim_time for r in added))
        del self.op_log[start:]
        self.op_log.append(OpRecord(op, count, sim))

    # -- mutation (public-id API) ------------------------------------------------

    def insert(self, data) -> np.ndarray:
        """Insert a batch as a new delta GAS; returns *public* ids."""
        internal = super().insert(data)
        if len(internal) == 0:
            return internal
        base = len(self._pub_slot)
        pub = np.arange(base, base + len(internal), dtype=np.int64)
        self._append_slots(internal, pub)
        self._gauges()
        return pub

    def delete(self, ids) -> None:
        """Delete by public id. Delta-resident rectangles use the native
        degenerate-and-refit path; main-resident ones are tombstoned with
        the main GAS untouched. Already-dead ids are skipped."""
        self._assert_mutable()
        ids = np.unique(np.asarray(ids, dtype=np.int64))
        if len(ids) == 0:
            return
        self._check_public(ids)
        slots = self._pub_slot[ids]
        slots = slots[slots >= 0]
        slots = slots[~self._deleted[slots]]
        if len(slots) == 0:
            return
        cut = self._main_cut
        delta_slots = slots[slots >= cut]
        main_slots = slots[slots < cut]
        n_ops = len(self.op_log)
        if len(delta_slots):
            batches = np.unique(
                np.searchsorted(self._prefix, delta_slots, side="right") - 1
            )
            super().delete(delta_slots)
            self._delta_refits += len(batches)
        if len(main_slots):
            self._tombstone(main_slots)
            self.epoch += 1
        self._collapse_ops(n_ops, "delete", len(slots))
        self._gauges()

    def update(self, ids, new_data) -> None:
        """Move rectangles by public id. Delta-resident slots (live or
        dead — updating a dead id resurrects, matching the base
        contract) refit in place; main-resident and compacted-away ids
        tombstone the old slot and land the new coordinates as delta,
        keeping the public id."""
        self._assert_mutable()
        ids = np.asarray(ids, dtype=np.int64)
        new = _coerce_boxes(new_data, self.ndim, self.dtype)
        if len(new) != len(ids):
            raise ValueError("ids and new rectangles must align")
        if new.is_degenerate().any():
            raise ValueError("use delete() for degenerate rectangles")
        if len(np.unique(ids)) != len(ids):
            raise ValueError("duplicate ids in one update batch")
        if len(ids) == 0:
            return
        self._check_public(ids)
        slots = self._pub_slot[ids]
        cut = self._main_cut
        in_delta = slots >= cut
        n_ops = len(self.op_log)
        if in_delta.any():
            batches = np.unique(
                np.searchsorted(self._prefix, slots[in_delta], side="right") - 1
            )
            super().update(slots[in_delta], new[in_delta])
            self._delta_refits += len(batches)
        moved = ~in_delta
        if moved.any():
            old = slots[moved]
            live_old = old[(old >= 0) & ~self._deleted[np.maximum(old, 0)]]
            if len(live_old):
                self._tombstone(live_old)
            internal = super().insert(new[moved])
            self._append_slots(internal, ids[moved])
        self._collapse_ops(n_ops, "update", len(ids))
        self._gauges()

    # -- compaction --------------------------------------------------------------

    def compact(self, reason: str = "manual") -> dict:
        """Fold delta + main into one freshly built GAS over the live
        set, dropping tombstoned slots entirely.

        Live rectangles keep their internal relative order (ascending
        slot), which together with the preserved public-id map makes the
        compacted index bit-identical — structure, counters, RNG-driven
        k prediction — to :meth:`to_monolithic` output built from the
        pre-compaction state. Priced as one full GAS build plus the IAS
        relink (:func:`~repro.perfmodel.compaction.compaction_build_cost`).
        """
        self._assert_mutable()
        with self.tracer.span(
            "churn.compact",
            reason=reason,
            live=self.n_rects,
            batches=self.n_batches,
            tombstones=self._n_tombstones,
        ) as sp:
            live = np.flatnonzero(~self._deleted)
            # Two independent fancy-index copies: the GAS must not alias
            # the view buffers (delete degenerates views first, GAS
            # geometry second — aliasing would fuse those steps).
            gas_boxes = Boxes(self._mins[live], self._maxs[live], dtype=self.dtype)
            gas = GeometryAS(gas_boxes, leaf_size=self.leaf_size, builder=self.builder)
            self._mins = self._mins[live]
            self._maxs = self._maxs[live]
            self._deleted = np.zeros(len(live), dtype=bool)
            self._gases = [gas]
            self._ias = InstanceAS()
            self._ias.add_instance(gas, instance_id=0)
            self._prefix = np.array([0, len(live)], dtype=np.int64)
            canon_live = self._canon_id[live]
            self._canon_id = canon_live
            pub = np.full(len(self._pub_slot), -1, dtype=np.int64)
            pub[canon_live] = np.arange(len(live), dtype=np.int64)
            self._pub_slot = pub
            self._flat_ias_cache = None
            self._shared_gases = set()
            self._main_batches = 1
            self._delta_refits = 0
            self._n_tombstones = 0
            self.epoch += 1
            sim = compaction_build_cost(len(live))
            self.op_log.append(OpRecord("compact", len(live), sim))
            self._state.reset()
            self.metrics.inc("churn.compactions")
            self.metrics.inc(f"churn.compactions.{reason}")
            self.metrics.inc("churn.compact_sim_time", sim)
            self._gauges()
            summary = {
                "reason": reason,
                "live": int(len(live)),
                "epoch": self.epoch,
                "sim_time": sim,
            }
            if self.tracer.enabled:
                sp.sim_time = sim
        return summary

    def rebuild(self) -> None:
        """The base index's quality remedy maps to a manual compaction
        (and additionally drops dead slots — public ids are unaffected)."""
        self.compact(reason="manual")

    def to_monolithic(self) -> "ChurnIndex":
        """The equivalence reference: a compacted copy over the live set.

        Forks (cloning the RNG mid-stream, so k prediction continues
        identically) and compacts the fork. Observability is detached —
        fresh metrics, null tracer, no planner, private drift state — so
        building the reference never perturbs the index under test.
        """
        twin = self.fork()
        twin.metrics = MetricsRegistry()
        twin.tracer = NULL_TRACER
        twin.planner = None
        twin._auto_planner = None
        twin._state = ChurnState(alpha=self.churn.alpha)
        twin.compact(reason="reference")
        return twin

    # -- triggers ----------------------------------------------------------------

    def compaction_due(self) -> dict | None:
        """Evaluate the three compaction triggers, read-only.

        Returns ``None`` or a dict with ``reason`` (``"delta-ratio"``,
        ``"refit-wear"`` or ``"counter-drift"``) plus the trigger's
        evidence. The drift trigger additionally requires the priced
        decision to fire (integrated excess > rebuild cost)."""
        cfg = self.churn
        fraction = self.delta_fraction()
        if fraction > cfg.delta_ratio_max:
            return {"reason": "delta-ratio", "delta_fraction": fraction}
        if self._delta_refits > cfg.refit_wear_max:
            return {"reason": "refit-wear", "delta_refits": self._delta_refits}
        state = self._state.snapshot()
        if state["n_live"] < cfg.min_observations or state["query_s"] is None:
            return None
        drift = self._state.drift_factor()
        if drift < cfg.drift_threshold:
            return None
        decision = priced_drift_decision(
            self.n_rects, drift, state["query_s"], cfg.horizon
        )
        if not decision.fire:
            return None
        return {"reason": "counter-drift", **decision.to_meta()}

    def maybe_compact(self) -> dict | None:
        """Compact iff a trigger is due (the synchronous form of the
        background compactor's poll; benches use it for determinism)."""
        due = self.compaction_due()
        if due is None:
            return None
        summary = self.compact(reason=due["reason"])
        summary["trigger"] = due
        return summary

    # -- observation hook --------------------------------------------------------

    def _traversal_quality(self, nodes_per_ray: float) -> float:
        """Nodes/ray over the ideal log2 depth of the live set — the
        structure-quality number the drift EWMAs track. Delta batches
        raise nodes/ray directly (every ray visits every GAS root);
        tombstones leave raw traversal flat while the live set shrinks,
        so dividing by the ideal depth of *today's* live set makes both
        read as quality loss against a freshly compacted structure."""
        return nodes_per_ray / float(np.log2(max(self.n_rects, 2)))

    def _record_metrics(self, predicate, result) -> None:
        """Feed the drift EWMAs from the counters every query already
        produces. Forward/R-side traversal is what compaction resets, so
        only that pass's nodes/ray and cast time are observed; planner
        baseline answers carry no traversal counters and are skipped."""
        super()._record_metrics(predicate, result)
        stats = result.meta.get("stats_obj")
        cast_s = result.phases.get("cast", 0.0)
        if stats is None:
            stats = result.meta.get("forward_stats_obj")
            cast_s = result.phases.get("forward_cast", 0.0)
        if stats is None or stats.n_rays == 0:
            return
        nodes_per_ray = float(stats.nodes_visited.sum()) / float(stats.n_rays)
        per_query_s = float(cast_s) / float(stats.n_rays)
        self._state.observe(
            predicate.value,
            self._traversal_quality(nodes_per_ray),
            per_query_s,
            clean=self.is_clean,
        )

    # -- fork / flatten / adopt --------------------------------------------------

    def _fork_extra(self, new: "RTSIndex") -> None:
        """Carry churn state across the copy-on-write fork: id maps are
        copied (each epoch owns its slot layout), while the config and
        the drift EWMAs are shared by reference like the metrics
        registry — drift accumulates across published epochs."""
        new.churn = self.churn
        new._canon_id = self._canon_id.copy()
        new._pub_slot = self._pub_slot.copy()
        new._main_batches = self._main_batches
        new._delta_refits = self._delta_refits
        new._n_tombstones = self._n_tombstones
        new._state = self._state

    def flatten_state(self):
        arrays, meta = super().flatten_state()
        arrays["churn.canon"] = _readonly(self._canon_id)
        arrays["churn.pub_slot"] = _readonly(self._pub_slot)
        meta["churn"] = {
            "main_batches": int(self._main_batches),
            "delta_refits": int(self._delta_refits),
            "n_tombstones": int(self._n_tombstones),
        }
        return arrays, meta

    @classmethod
    def adopt_state(cls, arrays, meta) -> "ChurnIndex":
        """Adopted churn indexes answer queries (public ids included)
        bit-identically to the owner; being read-only, they never
        compact — ``repro.serve`` ships compactions to workers as new
        epoch manifests instead."""
        self = super().adopt_state(arrays, meta)
        self.churn = ChurnConfig()
        self._state = ChurnState(alpha=self.churn.alpha)
        self._canon_id = arrays["churn.canon"]
        self._pub_slot = arrays["churn.pub_slot"]
        ch = meta.get("churn", {})
        self._main_batches = int(ch.get("main_batches", self.n_batches))
        self._delta_refits = int(ch.get("delta_refits", 0))
        self._n_tombstones = int(ch.get("n_tombstones", 0))
        return self
