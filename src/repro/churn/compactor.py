"""Background compaction driver for a churn-enabled query service.

:class:`BackgroundCompactor` owns one daemon thread that periodically
evaluates :meth:`~repro.churn.ChurnIndex.compaction_due` on the
service's *published snapshot* (a read-only decision — no locks beyond
the drift-state EWMA lock) and, when a trigger fires, routes the
compaction through :meth:`~repro.serve.SpatialQueryService.compact`.
That path is the ordinary single-writer mutation path: the compaction
runs on a copy-on-write fork and publishes atomically as a new epoch,
so readers keep draining their pinned epoch while the fold happens —
compaction never blocks a query.

The decision between trigger evaluation and the mutation is
time-of-check-to-time-of-use against concurrent writers, which is
harmless: the compaction applies to whatever epoch is current when the
writer lock is granted, and a just-published mutation only makes the
fold marginally more (never less) worthwhile.

Lock order: the compactor's own lock (``churn.compactor``, rank 5 —
see :mod:`repro.lockorder`) sits *below* the serve locks, so holding it
across the publish keeps acquisition strictly ascending; it also
serializes synchronous :meth:`poll` calls (tests, benches) against the
background loop.
"""

from __future__ import annotations

import threading

from repro.lockorder import make_lock
from repro.serve.errors import ServiceClosed


class BackgroundCompactor:
    """Drift-watching compaction thread over a ``SpatialQueryService``.

    ``service`` only needs ``snapshot()`` and ``compact(reason=...)``,
    so tests can drive a stub. Constructed (and owned) by the service
    itself when ``ServiceConfig(churn=...)`` is set.
    """

    def __init__(self, service, poll_interval: float = 0.002):
        self.service = service
        self.poll_interval = float(poll_interval)
        self._lock = make_lock("churn.compactor")
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: Compactions this driver has fired (all reasons).
        self.n_compactions = 0
        #: Summary dict of the most recent compaction, or None.
        self.last_summary: dict | None = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "BackgroundCompactor":
        """Start the poll thread (idempotent; no-op after :meth:`stop`)."""
        with self._lock:
            if self._thread is None and not self._stop.is_set():
                self._thread = threading.Thread(
                    target=self._run, name="repro-churn-compactor", daemon=True
                )
                self._thread.start()
        return self

    def stop(self) -> None:
        """Stop and join the poll thread (idempotent). Called by the
        service *before* it drains, so no compaction can publish between
        the final batches and shutdown."""
        self._stop.set()
        with self._lock:
            thread, self._thread = self._thread, None
        if thread is not None:
            thread.join()

    def _run(self) -> None:
        while not self._stop.wait(self.poll_interval):
            try:
                self.poll()
            except ServiceClosed:
                return

    # -- one trigger evaluation -------------------------------------------

    def poll(self) -> dict | None:
        """Evaluate the triggers once; compact through the service if one
        is due. Returns the compaction summary or ``None``. Safe to call
        synchronously — benches do, for deterministic compaction points.
        """
        with self._lock:
            snapshot = self.service.snapshot()
            due = getattr(snapshot, "compaction_due", lambda: None)()
            if due is None:
                return None
            summary = self.service.compact(reason=due["reason"])
            summary["trigger"] = due
            self.n_compactions += 1
            self.last_summary = summary
            return summary
