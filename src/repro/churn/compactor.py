"""Background compaction driver for a churn-enabled query service.

:class:`BackgroundCompactor` owns one daemon thread that periodically
evaluates :meth:`~repro.churn.ChurnIndex.compaction_due` on the
service's *published snapshot* (a read-only decision — no locks beyond
the drift-state EWMA lock) and, when a trigger fires, routes the
compaction through :meth:`~repro.serve.SpatialQueryService.compact`.
That path is the ordinary single-writer mutation path: the compaction
runs on a copy-on-write fork and publishes atomically as a new epoch,
so readers keep draining their pinned epoch while the fold happens —
compaction never blocks a query.

The decision between trigger evaluation and the mutation is
time-of-check-to-time-of-use against concurrent writers, which is
harmless: the compaction applies to whatever epoch is current when the
writer lock is granted, and a just-published mutation only makes the
fold marginally more (never less) worthwhile.

Lock order: the compactor's own lock (``churn.compactor``, rank 5 —
see :mod:`repro.lockorder`) sits *below* the serve locks, so holding it
across the publish keeps acquisition strictly ascending; it also
serializes synchronous :meth:`poll` calls (tests, benches) against the
background loop. The stop signal is a :class:`threading.Condition` over
that same ranked lock (not a bare ``Event``), so the stop flag, the
thread handle and the compaction counters all live under one guard —
exactly the discipline RTS004/RTS007 enforce.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro import tsan
from repro.lockorder import make_lock
from repro.serve.errors import ServiceClosed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.service import SpatialQueryService


@tsan.instrument("_stopping", "_thread", "_n_compactions", "_last_summary")
class BackgroundCompactor:
    """Drift-watching compaction thread over a ``SpatialQueryService``.

    ``service`` only needs ``snapshot()`` and ``compact(reason=...)``,
    so tests can drive a stub. Constructed (and owned) by the service
    itself when ``ServiceConfig(churn=...)`` is set.
    """

    def __init__(self, service: "SpatialQueryService", poll_interval: float = 0.002):
        self.service = service
        self.poll_interval = float(poll_interval)
        self._lock = make_lock("churn.compactor")
        # Stop signalling shares the ranked lock: waking the poll loop
        # and reading/writing the stop flag are one critical section.
        self._cond = threading.Condition(self._lock)
        self._stopping = False
        self._thread: threading.Thread | None = None
        self._n_compactions = 0
        self._last_summary: dict | None = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        with self._lock:
            return self._thread is not None and self._thread.is_alive()

    @property
    def n_compactions(self) -> int:
        """Compactions this driver has fired (all reasons)."""
        with self._lock:
            return self._n_compactions

    @property
    def last_summary(self) -> dict | None:
        """Summary dict of the most recent compaction, or None."""
        with self._lock:
            return self._last_summary

    def start(self) -> "BackgroundCompactor":
        """Start the poll thread (idempotent; no-op after :meth:`stop`)."""
        with self._lock:
            if self._thread is None and not self._stopping:
                self._thread = threading.Thread(
                    target=self._run, name="repro-churn-compactor", daemon=True
                )
                self._thread.start()
        return self

    def stop(self) -> None:
        """Stop and join the poll thread (idempotent). Called by the
        service *before* it drains, so no compaction can publish between
        the final batches and shutdown."""
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
            thread, self._thread = self._thread, None
        if thread is not None:
            thread.join()

    def _run(self) -> None:  # thread: repro-churn-compactor
        while True:
            with self._cond:
                if not self._stopping:
                    self._cond.wait(self.poll_interval)
                if self._stopping:
                    return
            try:
                self.poll()
            except ServiceClosed:
                return

    # -- one trigger evaluation -------------------------------------------

    def poll(self) -> dict | None:  # thread: main, repro-churn-compactor
        """Evaluate the triggers once; compact through the service if one
        is due. Returns the compaction summary or ``None``. Safe to call
        synchronously — benches do, for deterministic compaction points.
        """
        with self._lock:
            snapshot = self.service.snapshot()
            due = getattr(snapshot, "compaction_due", lambda: None)()
            if due is None:
                return None
            summary = self.service.compact(reason=due["reason"])
            summary["trigger"] = due
            self._n_compactions += 1
            self._last_summary = summary
            return summary
