"""Churn benchmark: write absorption and read latency under sustained
mutation, with drift-triggered compaction.

Two sections come out, written to ``BENCH_churn.json``:

- **staged** — a deterministic, simulated-time churn loop. One
  :class:`~repro.churn.ChurnIndex` absorbs a scripted tombstone-heavy
  mutation trace (the safety caps — delta ratio, refit wear — are set
  unreachable, so the ONLY way a compaction can fire is the priced
  counter-drift trigger evaluated by :meth:`maybe_compact` after each
  read wave). A plain :class:`~repro.core.index.RTSIndex` mirror replays
  the identical trace through the refit path, pricing the write side of
  the LSM trade: the mirror pays a GAS refit per touched batch, the
  churn index tombstones main-resident deletes for free. Every number is
  simulated and seeded, so ``--check`` re-runs the loop and verifies the
  committed artifact bit-for-bit (same compaction rounds, same trigger
  evidence, same times) — the churn gate.

- **concurrent** — the same drift-only policy behind a real
  :class:`~repro.serve.SpatialQueryService` with the
  :class:`~repro.churn.BackgroundCompactor` polling. Reader waves drive
  the drift EWMAs (reads ARE the sensor) until the compactor fires and
  publishes a compacted epoch while reads keep flowing. Wall-clock
  fields here are reported, not checked; ``--check`` verifies the
  invariants only: at least one compaction, reason ``counter-drift``,
  reads served before/after, answers stable across the publication.

Usage::

    python -m repro.churn.bench --write    # regenerate BENCH_churn.json
    python -m repro.churn.bench --check    # CI churn gate
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time

import numpy as np

from repro.churn import BackgroundCompactor, ChurnConfig, ChurnIndex
from repro.core.index import RTSIndex
from repro.geometry.boxes import Boxes

SCHEMA = "repro.churn.bench/v1"
DEFAULT_OUT = "BENCH_churn.json"

#: Relative tolerance on recomputed simulated times and drift factors.
SIM_RTOL = 1e-9

#: The drift-only trigger policy both sections run: safety caps out of
#: reach, so every compaction in this artifact is a priced counter-drift
#: decision — the property the gate exists to protect.
DRIFT_ONLY = dict(
    delta_ratio_max=1e9,
    refit_wear_max=10**9,
    drift_threshold=1.10,
    min_observations=3,
    horizon=500_000,
)


def _boxes(rng: np.random.Generator, n: int, domain: float = 100.0) -> Boxes:
    lo = rng.random((n, 2)) * domain
    return Boxes(lo, lo + rng.random((n, 2)) * 1.5 + 0.05, dtype=np.float32)


def run_staged(
    *,
    n_rects: int = 8_000,
    n_rounds: int = 12,
    delete_per_round: int = 480,
    insert_per_round: int = 60,
    queries_per_wave: int = 256,
    seed: int = 11,
) -> dict:
    """The deterministic churn loop (see module docstring).

    Each round: delete a contiguous slice of the original main structure
    (tombstones — the drift source), insert a small batch (delta
    fan-out), run one point-query wave over a fixed payload (feeding the
    drift EWMAs), then ``maybe_compact()``. The identical trace replays
    against a plain refit-path mirror for the write-cost comparison;
    pair counts are asserted equal on every wave while running.
    """
    rng = np.random.default_rng(seed)
    data = _boxes(rng, n_rects)
    pts = (rng.random((queries_per_wave, 2)) * 104.0).astype(np.float32)
    churn = ChurnConfig(**DRIFT_ONLY)
    # owner: serial bench indexes, no pool refs; dropped with the frame
    ix = ChurnIndex(data, dtype=np.float32, seed=seed, churn=churn)
    mirror = RTSIndex(data, dtype=np.float32, seed=seed)  # owner: ditto

    # Clean-baseline wave: the drift EWMAs compare every later (dirty)
    # observation against the traversal quality recorded here.
    ix.query_points(pts)

    rounds = []
    compactions = []
    next_pub = n_rects
    for r in range(n_rounds):
        lo = r * delete_per_round
        dead = np.arange(lo, lo + delete_per_round)
        ins = _boxes(rng, insert_per_round)

        ix.delete(dead)
        churn_delete_s = ix.last_op.sim_time
        ids = ix.insert(ins)
        churn_write_s = churn_delete_s + ix.last_op.sim_time
        assert ids[0] == next_pub  # public ids stay dense under churn
        next_pub += insert_per_round

        mirror.delete(dead)
        mirror_delete_s = mirror.last_op.sim_time
        mirror.insert(ins)
        mirror_write_s = mirror_delete_s + mirror.last_op.sim_time

        res = ix.query_points(pts)
        ref = mirror.query_points(pts)
        if len(res) != len(ref):
            raise AssertionError(
                f"round {r}: churn pair count {len(res)} != mirror {len(ref)}"
            )
        summary = ix.maybe_compact()
        if summary is not None:
            compactions.append({"round": r, **summary})
        rounds.append(
            {
                "round": r,
                "live": ix.n_rects,
                "delta_fraction": ix.delta_fraction(),
                "drift_factor": ix.rt_traversal_factor(),
                "churn_write_s": churn_write_s,
                "mirror_write_s": mirror_write_s,
                "churn_delete_s": churn_delete_s,
                "mirror_delete_s": mirror_delete_s,
                "read_wave_s": res.sim_time,
                "read_per_query_us": res.sim_time / queries_per_wave * 1e6,
                "pairs": len(res),
                "compacted": summary is not None,
            }
        )

    churn_total = sum(r["churn_write_s"] for r in rounds)
    mirror_total = sum(r["mirror_write_s"] for r in rounds)
    drifted_peak = max(r["read_per_query_us"] for r in rounds)
    post = [r["read_per_query_us"] for r in rounds if r["compacted"]]
    return {
        "n_rects": n_rects,
        "n_rounds": n_rounds,
        "delete_per_round": delete_per_round,
        "insert_per_round": insert_per_round,
        "queries_per_wave": queries_per_wave,
        "seed": seed,
        "policy": DRIFT_ONLY,
        "rounds": rounds,
        "compactions": compactions,
        "write_sim_s_churn": churn_total,
        "write_sim_s_mirror": mirror_total,
        "write_sim_speedup": mirror_total / churn_total if churn_total else 0.0,
        # The LSM headline: a main-resident delete is a tombstone (no
        # refit), so the churn side's delete bill is (near) zero while
        # the mirror re-prices a refit of every touched GAS.
        "delete_sim_s_churn": sum(r["churn_delete_s"] for r in rounds),
        "delete_sim_s_mirror": sum(r["mirror_delete_s"] for r in rounds),
        "read_per_query_us_peak": drifted_peak,
        "read_per_query_us_post_compaction": min(post) if post else None,
    }


def run_concurrent(
    *,
    n_rects: int = 4_000,
    queries_per_wave: int = 200,
    delete_fraction: float = 0.7,
    deadline_s: float = 60.0,
    seed: int = 12,
) -> dict:
    """Drift-triggered compaction behind the real serving stack.

    A clean read wave seeds the baseline EWMAs; a tombstone-heavy delete
    then degrades traversal quality; reader waves keep flowing until the
    background compactor prices the observed drift above a rebuild and
    publishes a compacted epoch. Wall-clock latencies are reported for
    the human reader; only structural invariants are gate-checked.
    """
    from repro.serve import ServiceConfig, SpatialQueryService

    rng = np.random.default_rng(seed)
    # owner: the service below; close() releases every published snapshot
    seed_index = RTSIndex(_boxes(rng, n_rects), dtype=np.float32, seed=seed)
    pts = (rng.random((queries_per_wave, 2)) * 104.0).astype(np.float32)
    churn = ChurnConfig(**DRIFT_ONLY, poll_interval=0.001)
    config = ServiceConfig(churn=churn, cache_size=0)

    wave_wall_us = []
    with SpatialQueryService(seed_index, config) as svc:
        svc.query_points(pts)  # clean baseline observation
        svc.delete(np.arange(int(n_rects * delete_fraction)))
        reads_before = 1
        deadline = time.monotonic() + deadline_s
        last_pre = None
        while svc.compactor.n_compactions == 0 and time.monotonic() < deadline:
            t0 = time.perf_counter()
            last_pre = svc.query_points(pts)
            wave_wall_us.append((time.perf_counter() - t0) * 1e6)
            reads_before += 1
        fired = svc.compactor.n_compactions
        summary = svc.compactor.last_summary
        t0 = time.perf_counter()
        after = svc.query_points(pts)
        post_wall_us = (time.perf_counter() - t0) * 1e6
        stable = (
            last_pre is not None and last_pre.pair_set() == after.pair_set()
        )
        return {
            "n_rects": n_rects,
            "delete_fraction": delete_fraction,
            "queries_per_wave": queries_per_wave,
            "seed": seed,
            "compactions": fired,
            "trigger": (summary or {}).get("trigger"),
            "compacted_epoch": (summary or {}).get("epoch"),
            "reads_before_compaction": reads_before,
            "read_epoch_after": after.meta["epoch"],
            "answers_stable_across_compaction": bool(stable),
            # Wall-clock, machine-dependent: reported, never checked.
            "wave_wall_us_mean": (
                float(np.mean(wave_wall_us)) if wave_wall_us else None
            ),
            "post_compaction_wave_wall_us": post_wall_us,
        }


def _invariant_failures(concurrent: dict, label: str) -> list[str]:
    """The structural claims the concurrent section must always satisfy."""
    failures = []
    if concurrent.get("compactions", 0) < 1:
        failures.append(f"{label}: no compaction fired within the deadline")
        return failures
    trigger = concurrent.get("trigger") or {}
    if trigger.get("reason") != "counter-drift":
        failures.append(
            f"{label}: compaction reason {trigger.get('reason')!r}, expected "
            "'counter-drift' (safety caps are unreachable in this policy)"
        )
    if trigger.get("drift", 0.0) < DRIFT_ONLY["drift_threshold"]:
        failures.append(f"{label}: trigger drift {trigger.get('drift')} below threshold")
    if trigger.get("excess_s", 0.0) <= trigger.get("rebuild_s", math.inf):
        failures.append(f"{label}: priced decision did not pay for the rebuild")
    if concurrent.get("reads_before_compaction", 0) < 2:
        failures.append(f"{label}: no reads proceeded while drift accumulated")
    if not concurrent.get("answers_stable_across_compaction"):
        failures.append(f"{label}: answers changed across the compacted epoch")
    return failures


def check(path: str) -> list[str]:
    """Re-run both sections and verify the committed artifact. The staged
    section must reproduce bit-for-bit; the concurrent section must
    satisfy its invariants both as committed and as re-run."""
    with open(path) as fh:
        committed = json.load(fh)
    failures = []
    if committed.get("schema") != SCHEMA:
        return [f"schema mismatch: {committed.get('schema')!r} != {SCHEMA!r}"]

    want = committed.get("staged", {})
    fresh = run_staged(
        **{
            k: want[k]
            for k in (
                "n_rects", "n_rounds", "delete_per_round", "insert_per_round",
                "queries_per_wave", "seed",
            )
            if k in want
        }
    )
    want_events = [(c["round"], c["reason"]) for c in want.get("compactions", [])]
    fresh_events = [(c["round"], c["reason"]) for c in fresh["compactions"]]
    if want_events != fresh_events:
        failures.append(
            f"staged: compaction schedule drifted — committed {want_events} "
            f"!= recomputed {fresh_events}"
        )
    if not any(reason == "counter-drift" for _, reason in fresh_events):
        failures.append("staged: no counter-drift compaction in the trace")
    for i, (w, f) in enumerate(zip(want.get("rounds", []), fresh["rounds"])):
        for field in ("drift_factor", "churn_write_s", "mirror_write_s",
                      "read_wave_s"):
            if not math.isclose(w[field], f[field], rel_tol=SIM_RTOL, abs_tol=1e-15):
                failures.append(
                    f"staged round {i}.{field}: committed {w[field]!r} != "
                    f"recomputed {f[field]!r}"
                )
        if w["pairs"] != f["pairs"] or w["compacted"] != f["compacted"]:
            failures.append(f"staged round {i}: pairs/compacted mismatch")
    if len(want.get("rounds", [])) != len(fresh["rounds"]):
        failures.append("staged: round count mismatch")
    if fresh["write_sim_speedup"] <= 1.0:
        failures.append(
            "staged: churn writes not cheaper than refit-path mirror "
            f"(speedup {fresh['write_sim_speedup']:.3f})"
        )
    if fresh["delete_sim_s_churn"] >= fresh["delete_sim_s_mirror"]:
        failures.append(
            "staged: tombstone deletes not cheaper than refit-path deletes"
        )

    failures += _invariant_failures(committed.get("concurrent", {}), "committed")
    failures += _invariant_failures(run_concurrent(), "re-run")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.churn.bench",
        description="Churn benchmark / CI gate (delta absorption + "
        "drift-triggered compaction).",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--write", action="store_true",
                      help=f"regenerate the artifact (default path {DEFAULT_OUT})")
    mode.add_argument("--check", action="store_true",
                      help="re-run and verify the committed artifact (CI gate)")
    parser.add_argument("--out", default=DEFAULT_OUT, help="artifact path")
    args = parser.parse_args(argv)

    if args.check:
        failures = check(args.out)
        for f in failures:
            print(f"CHURN GATE FAIL: {f}")
        if failures:
            return 1
        print(f"churn gate OK: {args.out} reproduced (staged trace + invariants)")
        return 0

    staged = run_staged()
    for row in staged["rounds"]:
        mark = "  <- compacted" if row["compacted"] else ""
        print(
            f"round {row['round']:>2d}  live {row['live']:>6d}  "
            f"delta {row['delta_fraction']:6.3f}  "
            f"drift {row['drift_factor']:6.3f}  "
            f"read {row['read_per_query_us']:7.3f} us/q{mark}"
        )
    print(
        f"write sim: churn {staged['write_sim_s_churn'] * 1e3:.3f} ms vs "
        f"refit mirror {staged['write_sim_s_mirror'] * 1e3:.3f} ms "
        f"({staged['write_sim_speedup']:.1f}x); deletes "
        f"{staged['delete_sim_s_churn'] * 1e3:.3f} ms vs "
        f"{staged['delete_sim_s_mirror'] * 1e3:.3f} ms"
    )
    concurrent = run_concurrent()
    trig = concurrent.get("trigger") or {}
    print(
        f"concurrent: {concurrent['compactions']} compaction(s), "
        f"reason {trig.get('reason')!r}, drift {trig.get('drift', 0.0):.3f}, "
        f"{concurrent['reads_before_compaction']} reads before publication, "
        f"answers stable: {concurrent['answers_stable_across_compaction']}"
    )

    doc = {"schema": SCHEMA, "staged": staged, "concurrent": concurrent}
    if args.write:
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
