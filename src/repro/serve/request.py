"""Request normalization and the in-flight request record.

A request's query payload is normalized *at admission* into the exact
arrays the index layer would build for a direct call — points become a
C-contiguous ``(n, ndim)`` array of the index dtype, rectangles become a
:class:`~repro.geometry.boxes.Boxes` of the index dtype. Normalizing up
front means (a) malformed payloads fail in the client thread with the
ordinary ``ValueError``, never inside the scheduler; (b) the micro-batcher
can concatenate payloads with plain ``np.concatenate``; and (c) the
result cache can digest the bytes that will actually be traversed.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from repro.core.index import Predicate, _coerce_boxes
from repro.geometry.boxes import Boxes


def normalize_payload(predicate: Predicate, queries, ndim: int, dtype):
    """Canonicalize a query payload for ``predicate`` on an
    (``ndim``, ``dtype``) index; returns the array/Boxes the index layer
    would itself construct, so batched and direct execution see
    bit-identical inputs."""
    if predicate is Predicate.CONTAINS_POINT:
        pts = np.ascontiguousarray(queries, dtype=dtype)
        if pts.ndim != 2 or pts.shape[1] != ndim:
            raise ValueError(f"expected points of shape (n, {ndim})")
        return pts
    if predicate in (Predicate.RANGE_CONTAINS, Predicate.RANGE_INTERSECTS):
        boxes = _coerce_boxes(queries, ndim, dtype)
        if predicate is Predicate.RANGE_INTERSECTS and boxes.is_degenerate().any():
            raise ValueError("query rectangles must not be degenerate")
        return boxes
    raise ValueError(f"unsupported predicate: {predicate!r}")


def payload_len(payload) -> int:
    """Logical query count of a normalized payload."""
    return len(payload)


def concat_payloads(predicate: Predicate, payloads: list):
    """Concatenate normalized payloads into one launch-sized payload,
    preserving request order (the batch's query-id space is the
    concatenation order)."""
    if len(payloads) == 1:
        return payloads[0]
    if predicate is Predicate.CONTAINS_POINT:
        return np.concatenate(payloads)
    return Boxes(
        np.concatenate([b.mins for b in payloads]),
        np.concatenate([b.maxs for b in payloads]),
    )


@dataclass
class QueryRequest:
    """One admitted query request, from enqueue to completion."""

    predicate: Predicate
    payload: object
    n_queries: int
    k: int | None
    #: Absolute ``time.monotonic()`` deadline, or None for no deadline.
    deadline: float | None
    future: Future = field(default_factory=Future)
    enqueue_t: float = field(default_factory=time.monotonic)

    def expired(self, now: float | None = None) -> bool:
        return self.deadline is not None and (now or time.monotonic()) >= self.deadline

    def batch_key(self) -> tuple:
        """Requests with equal keys may share one batched launch."""
        return (self.predicate, self.k)
