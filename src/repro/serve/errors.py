"""Service-level error taxonomy.

Every failure a client of :class:`~repro.serve.SpatialQueryService` can
see is one of these; all derive from :class:`ServeError` so callers can
catch the whole family. They are *control-flow* errors (overload,
deadlines, lifecycle) — malformed requests still raise the underlying
``ValueError`` from the index layer.
"""

from __future__ import annotations


class ServeError(RuntimeError):
    """Base class of every serving-layer error."""


class ServiceOverloaded(ServeError):
    """Admission control rejected the request: the bounded request queue
    is at ``max_queue_depth``. Back off and retry — rejecting at the door
    keeps queueing delay bounded for the requests already admitted."""


class DeadlineExceeded(ServeError):
    """The request's deadline passed before (or while) it was served."""


class ServiceClosed(ServeError):
    """The service has been closed and accepts no new requests."""


class WorkerFailed(ServeError):
    """A process-pool worker failed executing a shard of this batch.

    Raised per *batch*: either a worker reported an execution error for
    one of the batch's shard tasks, or the shard's worker slot died
    repeatedly (``procpool.MAX_TASK_ATTEMPTS`` resubmissions exhausted).
    Other batches in the same wave are unaffected — the router resubmits
    a dead worker's shards to a respawned process on the same slot, so a
    single crash never tears an epoch or a wave."""
