"""Shared-memory epoch publication: flatten an index into one segment.

The serving tax this removes is pickling index state across process
boundaries: a published epoch is immutable (the snapshot contract of
``repro.serve.snapshot``), so its flattened buffers can live in one
``multiprocessing.shared_memory`` segment that every worker process maps
read-only and zero-copy. The wire format is a *manifest* — a small
picklable dict naming the segment and describing each array's dtype,
shape and byte offset — plus the index meta from
:meth:`~repro.core.index.RTSIndex.flatten_state`.

Lifecycle contract (enforced by ``repro.serve.procpool``): the writer
creates the segment and owns ``unlink()``; readers attach and own only
their ``close()``. Unlinking while readers hold mappings is safe on
POSIX — the name disappears, the memory survives until the last mapping
closes — which is what lets the publisher retire an epoch without a
round trip to every worker.

Segment layout: arrays are packed back to back at 64-byte aligned
offsets (cache-line alignment keeps adopted traversal reads on the same
boundaries as the owner's heap arrays).
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

from repro.core.index import RTSIndex
from repro.rtcore.bvh import readonly_view

#: Array offsets inside a segment are rounded up to this many bytes.
ALIGNMENT = 64

MANIFEST_SCHEMA = "repro.serve.shm/v1"


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def segment_layout(arrays: dict[str, np.ndarray]) -> tuple[dict, int]:
    """Assign aligned offsets to each array; returns ``(entries, nbytes)``.

    ``entries`` maps array name to ``{"dtype", "shape", "offset"}`` —
    exactly the per-array records the manifest carries.
    """
    entries: dict[str, dict] = {}
    offset = 0
    for name, arr in arrays.items():
        offset = _align(offset)
        entries[name] = {
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "offset": offset,
        }
        offset += int(arr.nbytes)
    return entries, offset


def publish_segment(
    name: str, arrays: dict[str, np.ndarray], meta: dict
) -> tuple[dict, shared_memory.SharedMemory]:
    """Create segment ``name``, copy ``arrays`` in, return the manifest.

    The returned :class:`SharedMemory` is the *owner* handle: the caller
    is responsible for ``unlink()`` (and its own ``close()``) when the
    epoch retires — see :class:`repro.serve.procpool.SegmentRegistry`.
    Raises :class:`FileExistsError` if the name is taken (the caller
    picks a fresh deterministic name and retries).
    """
    entries, nbytes = segment_layout(arrays)
    # owner: returned to the caller, who unlinks on epoch retirement.
    shm = shared_memory.SharedMemory(create=True, size=max(nbytes, 1), name=name)
    try:
        for arr_name, arr in arrays.items():
            e = entries[arr_name]
            dst = np.ndarray(
                tuple(e["shape"]),
                dtype=np.dtype(e["dtype"]),
                buffer=shm.buf,
                offset=e["offset"],
            )
            dst[...] = arr
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "segment": shm.name,
        "nbytes": int(nbytes),
        "arrays": entries,
        "meta": meta,
    }
    return manifest, shm


def attach_segment(
    manifest: dict,
) -> tuple[dict[str, np.ndarray], shared_memory.SharedMemory]:
    """Map a published segment; returns read-only zero-copy array views.

    The returned :class:`SharedMemory` is a *reader* handle: the caller
    owns only its ``close()`` (never ``unlink()``) and must keep it
    alive as long as the views are in use — closing the handle
    invalidates the underlying buffer.
    """
    if manifest.get("schema") != MANIFEST_SCHEMA:
        raise ValueError(f"unknown manifest schema {manifest.get('schema')!r}")
    # owner: returned to the caller, who closes when the epoch is dropped.
    shm = shared_memory.SharedMemory(name=manifest["segment"])
    arrays: dict[str, np.ndarray] = {}
    for name, e in manifest["arrays"].items():
        view = np.ndarray(
            tuple(e["shape"]),
            dtype=np.dtype(e["dtype"]),
            buffer=shm.buf,
            offset=e["offset"],
        )
        arrays[name] = readonly_view(view)
    return arrays, shm


def publish_index(
    index: RTSIndex, name: str
) -> tuple[dict, shared_memory.SharedMemory]:
    """Flatten ``index`` and publish it as segment ``name``."""
    arrays, meta = index.flatten_state()
    return publish_segment(name, arrays, meta)


def adopt_index(manifest: dict) -> tuple[RTSIndex, shared_memory.SharedMemory]:
    """Attach a published epoch and adopt it as a read-only index.

    Returns ``(index, shm)``; the index's buffers are views into the
    mapping, so the caller must close ``shm`` only after dropping the
    index. A manifest published from a :class:`~repro.churn.ChurnIndex`
    (marked by ``meta["churn"]``) adopts as a churn index, so workers
    apply the same public-id remap at emission; the import is deferred
    to keep churn-free services free of the churn package.
    """
    arrays, shm = attach_segment(manifest)
    try:
        cls = RTSIndex
        if "churn" in manifest["meta"]:
            from repro.churn.index import ChurnIndex

            cls = ChurnIndex
        return cls.adopt_state(arrays, manifest["meta"]), shm
    except BaseException:
        shm.close()
        raise
