"""Concurrent query serving over :class:`~repro.core.index.RTSIndex`.

The first request-facing layer of the reproduction (ROADMAP north star:
serve heavy traffic, not just library calls). Four cooperating pieces:

- :mod:`repro.serve.service` — :class:`SpatialQueryService`: bounded
  admission queue, per-request deadlines, a single scheduler thread.
- :mod:`repro.serve.batcher` — micro-batching: compatible FIFO-prefix
  requests coalesce into one launch; results scatter back per request.
- :mod:`repro.serve.snapshot` — epoch snapshots: mutations fork the
  index copy-on-write and publish atomically; readers never see a torn
  structure.
- :mod:`repro.serve.cache` — LRU result cache keyed by
  ``(predicate, query digest, k, epoch)``; epoch bumps invalidate free.
- :mod:`repro.serve.procpool` + :mod:`repro.serve.shm` — multi-process
  sharded dispatch: epochs publish as shared-memory segments, N worker
  processes attach zero-copy, a consistent-hash router fans shard tasks
  out and the parent merges bit-identical responses
  (``ServiceConfig.workers``).

Plus the measurement harness: :mod:`repro.serve.loadgen` (closed-loop
clients) and ``python -m repro.serve.bench`` (the ``BENCH_serve.json``
artifact). See docs/API.md "Serving" and DESIGN.md §9.
"""

from repro.serve.batcher import BatchPolicy
from repro.serve.cache import ResultCache, query_digest
from repro.serve.errors import (
    DeadlineExceeded,
    ServeError,
    ServiceClosed,
    ServiceOverloaded,
    WorkerFailed,
)
from repro.serve.loadgen import LoadGenerator, LoadReport, WorkloadMix
from repro.serve.procpool import ProcessPool
from repro.serve.request import QueryRequest, normalize_payload
from repro.serve.service import ServiceConfig, SpatialQueryService
from repro.serve.snapshot import EpochSnapshots

__all__ = [
    "BatchPolicy",
    "DeadlineExceeded",
    "EpochSnapshots",
    "LoadGenerator",
    "LoadReport",
    "ProcessPool",
    "QueryRequest",
    "ResultCache",
    "ServeError",
    "ServiceClosed",
    "ServiceConfig",
    "ServiceOverloaded",
    "SpatialQueryService",
    "WorkerFailed",
    "WorkloadMix",
    "normalize_payload",
    "query_digest",
]
