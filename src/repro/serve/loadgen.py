"""Closed-loop load generation against a :class:`SpatialQueryService`.

``n_clients`` threads each keep exactly one request outstanding (submit,
wait, repeat) until the shared request budget is spent — the classic
closed-loop harness: offered load is controlled by the client count, and
measured latency includes queueing, batching linger and execution.

The workload mix is deterministic per (seed, client): query payloads and
mutation batches are drawn from per-client RNGs, so two runs with the
same knobs issue the same logical work (arrival *order* still depends on
thread scheduling, which is the point of a concurrency benchmark).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.index import Predicate
from repro.geometry.boxes import Boxes
from repro.lockorder import make_lock
from repro.serve.errors import DeadlineExceeded, ServeError, ServiceOverloaded
from repro.serve.service import SpatialQueryService


@dataclass(frozen=True)
class WorkloadMix:
    """Operation mix of one load-generation run.

    ``point``/``contains``/``intersects`` are relative query weights
    (normalized internally); ``write_ratio`` is the fraction of *all*
    operations that are mutations (split evenly between insert, delete
    and update, with a rebuild replacing every eighth delete).
    """

    point: float = 0.5
    contains: float = 0.25
    intersects: float = 0.25
    write_ratio: float = 0.0
    queries_per_request: int = 32
    mutation_size: int = 16

    def __post_init__(self):
        if not 0.0 <= self.write_ratio < 1.0:
            raise ValueError(f"write_ratio must be in [0, 1), got {self.write_ratio}")
        if self.queries_per_request < 1 or self.mutation_size < 1:
            raise ValueError("queries_per_request and mutation_size must be >= 1")
        if self.point + self.contains + self.intersects <= 0:
            raise ValueError("at least one query weight must be positive")


@dataclass
class LoadReport:
    """Measured outcome of one closed-loop run (see ``to_dict``)."""

    n_clients: int
    n_requests: int
    mix: WorkloadMix
    wall_s: float = 0.0
    completed: int = 0
    mutations: int = 0
    rejected: int = 0
    deadline_missed: int = 0
    errors: int = 0
    queries_served: int = 0
    sim_time_s: float = 0.0
    batches: int = 0
    mean_batch: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    p50_us: float = 0.0
    p99_us: float = 0.0
    epochs_published: int = 0
    per_predicate: dict = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        """Completed requests per wall-clock second."""
        return self.completed / self.wall_s if self.wall_s else 0.0

    @property
    def sim_qps(self) -> float:
        """Logical queries per *simulated* second of launch time — the
        hardware-side throughput the batching policy is buying."""
        return self.queries_served / self.sim_time_s if self.sim_time_s else 0.0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "n_clients": self.n_clients,
            "n_requests": self.n_requests,
            "write_ratio": self.mix.write_ratio,
            "queries_per_request": self.mix.queries_per_request,
            "wall_s": self.wall_s,
            "completed": self.completed,
            "mutations": self.mutations,
            "rejected": self.rejected,
            "deadline_missed": self.deadline_missed,
            "errors": self.errors,
            "queries_served": self.queries_served,
            "throughput_rps": self.throughput_rps,
            "sim_time_s": self.sim_time_s,
            "sim_qps": self.sim_qps,
            "batches": self.batches,
            "mean_batch": self.mean_batch,
            "cache_hit_rate": self.cache_hit_rate,
            "p50_us": self.p50_us,
            "p99_us": self.p99_us,
            "epochs_published": self.epochs_published,
            "per_predicate": dict(self.per_predicate),
        }


class LoadGenerator:
    """Drive a service with ``n_clients`` closed-loop threads."""

    def __init__(
        self,
        service: SpatialQueryService,
        *,
        n_clients: int = 4,
        n_requests: int = 200,
        mix: WorkloadMix | None = None,
        domain: float = 100.0,
        extent: float = 3.0,
        seed: int = 0,
        timeout: float | None = None,
    ):
        if n_clients < 1 or n_requests < 1:
            raise ValueError("n_clients and n_requests must be >= 1")
        self.service = service
        self.n_clients = int(n_clients)
        self.n_requests = int(n_requests)
        self.mix = mix or WorkloadMix()
        self.domain = float(domain)
        self.extent = float(extent)
        self.seed = int(seed)
        self.timeout = timeout

    # -- payload synthesis -------------------------------------------------

    def _boxes(self, rng: np.random.Generator, n: int) -> Boxes:
        ndim = self.service.snapshot().ndim
        lo = rng.random((n, ndim)) * self.domain
        return Boxes(lo, lo + rng.random((n, ndim)) * self.extent + 0.01)

    def _points(self, rng: np.random.Generator, n: int) -> np.ndarray:
        ndim = self.service.snapshot().ndim
        return rng.random((n, ndim)) * (self.domain * 1.04)

    def _one_op(self, rng: np.random.Generator, report: LoadReport,
                lock: threading.Lock) -> None:
        mix = self.mix
        if mix.write_ratio > 0 and rng.random() < mix.write_ratio:
            self._one_mutation(rng, report, lock)
            return
        weights = np.array([mix.point, mix.contains, mix.intersects], dtype=float)
        pick = rng.choice(3, p=weights / weights.sum())
        n = mix.queries_per_request
        if pick == 0:
            predicate, payload = Predicate.CONTAINS_POINT, self._points(rng, n)
        elif pick == 1:
            predicate, payload = Predicate.RANGE_CONTAINS, self._boxes(rng, n)
        else:
            predicate, payload = Predicate.RANGE_INTERSECTS, self._boxes(rng, n)
        result = self.service.query(predicate, payload, timeout=self.timeout)
        with lock:
            report.completed += 1
            report.queries_served += n
            stats = report.per_predicate.setdefault(predicate.value, {"requests": 0, "pairs": 0})
            stats["requests"] += 1
            stats["pairs"] += len(result)

    def _one_mutation(self, rng: np.random.Generator, report: LoadReport,
                      lock: threading.Lock) -> None:
        n = self.mix.mutation_size
        total_slots = len(self.service.snapshot())
        op = int(rng.integers(0, 3))
        if op == 0 or total_slots == 0:
            self.service.insert(self._boxes(rng, n))
        elif op == 1:
            if rng.integers(0, 8) == 0:
                self.service.rebuild()
            else:
                self.service.delete(rng.integers(0, total_slots, size=min(n, total_slots)))
        else:
            ids = np.unique(rng.integers(0, total_slots, size=min(n, total_slots)))
            self.service.update(ids, self._boxes(rng, len(ids)))
        with lock:
            report.completed += 1
            report.mutations += 1

    # -- the run -----------------------------------------------------------

    def run(self) -> LoadReport:
        report = LoadReport(self.n_clients, self.n_requests, self.mix)
        # Rank 50: held only for report bookkeeping, never across a
        # service call.
        lock = make_lock("serve.loadgen")
        budget = iter(range(self.n_requests))

        def next_ticket() -> bool:
            with lock:
                return next(budget, None) is not None

        def client(cid: int) -> None:
            rng = np.random.default_rng((self.seed, cid))
            while next_ticket():
                try:
                    self._one_op(rng, report, lock)
                except ServiceOverloaded:
                    with lock:
                        report.rejected += 1
                except DeadlineExceeded:
                    with lock:
                        report.deadline_missed += 1
                except ServeError:
                    with lock:
                        report.errors += 1

        threads = [
            threading.Thread(target=client, args=(cid,), name=f"loadgen-{cid}")
            for cid in range(self.n_clients)
        ]
        m = self.service.metrics
        # Counter snapshots so a reused service reports this run's deltas.
        before = {
            name: m.counter(name)
            for name in ("serve.sim_time", "serve.batches",
                         "serve.cache.hits", "serve.cache.misses")
        }
        epoch0 = self.service.epoch
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        report.wall_s = time.perf_counter() - t0

        report.sim_time_s = float(m.counter("serve.sim_time", 0.0) - before["serve.sim_time"])
        report.batches = int(m.counter("serve.batches") - before["serve.batches"])
        report.mean_batch = m.histogram_mean("serve.batch_size")
        report.cache_hits = int(m.counter("serve.cache.hits") - before["serve.cache.hits"])
        report.cache_misses = int(
            m.counter("serve.cache.misses") - before["serve.cache.misses"]
        )
        q = self.service.latency_quantiles()
        report.p50_us, report.p99_us = q["p50_us"], q["p99_us"]
        report.epochs_published = self.service.epoch - epoch0
        return report
