"""The request-facing query service.

:class:`SpatialQueryService` turns a single-caller :class:`RTSIndex`
into a concurrent server:

- **Admission control** — requests enter a bounded FIFO queue;
  ``ServiceOverloaded`` rejects beyond ``max_queue_depth`` so queueing
  delay stays bounded for admitted work, and per-request deadlines drop
  requests that waited too long.
- **Micro-batching** — a single scheduler thread coalesces compatible
  queued requests (same predicate / pinned k) into one batched index
  launch (see :mod:`repro.serve.batcher`), amortizing per-launch
  overhead; results scatter back per request in the canonical
  query-major order.
- **Epoch snapshots** — mutations fork the current snapshot
  copy-on-write and publish atomically (:mod:`repro.serve.snapshot`);
  every response carries the epoch it was served from and in-flight
  batches never observe a half-applied mutation.
- **Result cache** — an LRU keyed by ``(predicate, digest, k, epoch)``
  (:mod:`repro.serve.cache`); epoch bumps invalidate it for free.

The single scheduler thread is deliberate: it mirrors one GPU executing
one launch at a time, keeps execution order identical to admission order
(so a serial client through the service is bit-for-bit the direct-index
run — the obs gate's ``--serve`` mode enforces this), and makes the
snapshot read path lock-free.

Observability: queue depth and epoch gauges, batch-size and latency
histograms (p50/p99 via ``Histogram.quantile``), cache hit/miss and
deadline counters on a service-level
:class:`~repro.obs.MetricsRegistry`; each launch runs under a
``serve.batch`` span when a tracer is installed.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from repro import tsan
from repro.core.index import Predicate, RTSIndex
from repro.core.result import QueryResult
from repro.lockorder import make_lock
from repro.obs.metrics import MetricsRegistry
from repro.serve.batcher import BatchPolicy, execute_batch, split_batch, take_compatible
from repro.serve.cache import ResultCache, query_digest
from repro.serve.errors import DeadlineExceeded, ServiceClosed, ServiceOverloaded
from repro.serve.procpool import ProcessPool
from repro.serve.request import QueryRequest, concat_payloads, normalize_payload
from repro.serve.snapshot import EpochSnapshots


@dataclass(frozen=True)
class ServiceConfig:
    """Service policy knobs (see docs/API.md, "Serving")."""

    #: Admission bound: requests beyond this queue depth are rejected
    #: with :class:`ServiceOverloaded` instead of queued.
    max_queue_depth: int = 1024
    #: Maximum requests coalesced into one launch (1 = unbatched).
    max_batch: int = 32
    #: Seconds the scheduler lingers for more compatible requests while
    #: the queue is empty and the batch is not full.
    max_wait: float = 0.002
    #: LRU result-cache entries (0 disables the cache).
    cache_size: int = 256
    #: Default per-request deadline in seconds (None = no deadline).
    default_timeout: float | None = None
    #: Execution planning for served batches: ``"auto"`` (default) lets
    #: the adaptive planner (:mod:`repro.plan`) choose backend and shard
    #: fan-out per launch; ``None`` pins the fixed-config path. Answers
    #: are planner-invariant; only simulated/wall time moves. Ignored
    #: with ``workers > 0`` — the process pool prices its own shard
    #: fan-out per task (:func:`~repro.parallel.executor.process_priced_shards`).
    planner: str | None = "auto"
    #: Worker processes for sharded dispatch over shared-memory epoch
    #: snapshots (:mod:`repro.serve.procpool`). 0 (default) serves
    #: in-process; N > 0 fans query batches across N processes with
    #: bit-identical responses.
    workers: int = 0
    #: Batches dispatched per scheduler wave in process mode (the wave is
    #: the unit of overlap: independent batches in one wave execute on
    #: parallel workers). ``None`` defaults to ``max(2 * workers, 1)``.
    max_inflight: int | None = None
    #: High-churn write path: a :class:`~repro.churn.ChurnConfig` wraps
    #: the seed index in a :class:`~repro.churn.ChurnIndex` (writes land
    #: in delta GASes + tombstones; the main structure is never refit)
    #: and runs a :class:`~repro.churn.BackgroundCompactor` that folds
    #: the delta back when a trigger fires, publishing the compacted
    #: index atomically as a new epoch. ``None`` (default) keeps the
    #: plain refit-based write path.
    churn: object | None = None

    def __post_init__(self):
        if self.max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {self.max_queue_depth}")
        BatchPolicy(self.max_batch, self.max_wait)  # validates batch knobs
        if self.cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {self.cache_size}")
        if self.planner not in (None, "off", "auto"):
            raise ValueError(f'planner must be None, "off" or "auto", got {self.planner!r}')
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.churn is not None:
            # Deferred import: churn is optional and the plan/serve
            # import graph must stay acyclic for churn-free users.
            from repro.churn import ChurnConfig

            if not isinstance(self.churn, ChurnConfig):
                raise ValueError(
                    f"churn must be None or a ChurnConfig, got {self.churn!r}"
                )


@tsan.instrument("_closed", "_thread", containers=("_pending",))
class SpatialQueryService:
    """Concurrent query serving over one :class:`RTSIndex`.

    Parameters
    ----------
    index:
        The seed index; it becomes the initial snapshot and must not be
        mutated directly afterwards (use the service's mutation API).
    config:
        A :class:`ServiceConfig`; defaults are reasonable for tests.
    tracer:
        Optional :class:`~repro.obs.Tracer`; installed on the snapshot
        chain so ``serve.batch`` spans nest the per-phase query spans.
    retain_snapshots:
        ``True`` keeps every published epoch queryable via
        :meth:`snapshot_at` (memory grows per mutation; meant for
        correctness tests). An ``int K`` keeps only the last K epochs —
        evicted snapshots are closed and :meth:`snapshot_at` raises a
        clear error for them.
    autostart:
        Start the scheduler thread immediately. Tests pass False to
        stage requests deterministically, then call :meth:`start`.
    """

    def __init__(
        self,
        index: RTSIndex,
        config: ServiceConfig | None = None,
        *,
        tracer=None,
        retain_snapshots: bool | int = False,
        autostart: bool = True,
    ):
        self.config = config or ServiceConfig()
        if tracer is not None:
            index.tracer = tracer
        self.tracer = index.tracer
        if self.config.churn is not None:
            from repro.churn import ChurnIndex

            # Wrap the seed in the churn write path. from_index forks
            # copy-on-write, so the caller's index is untouched and its
            # current global ids become the service's public ids.
            index = ChurnIndex.from_index(index, churn=self.config.churn)
        if isinstance(retain_snapshots, bool):
            self.snapshots = EpochSnapshots(index, retain_all=retain_snapshots)
        else:
            self.snapshots = EpochSnapshots(index, retain_last=int(retain_snapshots))
        self.policy = BatchPolicy(self.config.max_batch, self.config.max_wait)
        self.cache = ResultCache(self.config.cache_size)
        self.metrics = MetricsRegistry()
        # owner: the pool (and every shm segment it publishes) is closed
        # by SpatialQueryService.close() after the scheduler drains.
        self.pool: ProcessPool | None = (
            ProcessPool(self.config.workers) if self.config.workers > 0 else None
        )
        if self.pool is not None:
            self.pool.publish(index)
        self._pending: deque[QueryRequest] = deque()
        # Rank 10: the service lock is the outermost in the documented
        # global order (repro.lockorder.RANKS) — it may be held while
        # recording metrics (rank 40), never the reverse.
        self._lock = make_lock("serve.service")
        self._cond = threading.Condition(self._lock)
        self._closed = False
        self._thread: threading.Thread | None = None
        self._last_served: RTSIndex | None = None
        # owner: stopped and joined by SpatialQueryService.close(),
        # before the scheduler drains.
        self.compactor = None
        if self.config.churn is not None:
            from repro.churn.compactor import BackgroundCompactor

            self.compactor = BackgroundCompactor(
                self, poll_interval=self.config.churn.poll_interval
            )
        if autostart:
            self.start()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "SpatialQueryService":
        """Start the scheduler thread (idempotent)."""
        with self._lock:
            if self._closed:
                raise ServiceClosed("service is closed")
            if self._thread is None:
                target = self._run_proc if self.pool is not None else self._run
                self._thread = threading.Thread(
                    target=target, name="repro-serve-scheduler", daemon=True
                )
                self._thread.start()
        # Outside the service lock: the compactor takes its own lock
        # (rank 5, *below* serve.service) on start, and lock acquisition
        # must stay ascending.
        if self.compactor is not None:
            self.compactor.start()
        return self

    def close(self, drain: bool = True) -> None:
        """Stop accepting requests and shut down (idempotent).

        ``drain=True`` (default) serves everything already admitted
        before stopping; ``drain=False`` fails queued requests with
        :class:`ServiceClosed`. Also releases the snapshot index's
        executor resources (:meth:`RTSIndex.close`).
        """
        # Stop the compactor before draining: a compaction publishing
        # mid-drain would be wasted work, and stop() joins, so no poll
        # can race the closed flag below.
        if self.compactor is not None:
            self.compactor.stop()
        with self._cond:
            if self._closed and self._thread is None:
                return
            self._closed = True
            if not drain:
                while self._pending:
                    req = self._pending.popleft()
                    req.future.set_exception(ServiceClosed("service closed"))
            self._cond.notify_all()
            thread, self._thread = self._thread, None
        if thread is not None:
            thread.join()
        else:
            # Never started: fail anything staged for a deterministic start.
            with self._cond:
                while self._pending:
                    self._pending.popleft().future.set_exception(
                        ServiceClosed("service closed")
                    )
        last, self._last_served = self._last_served, None
        if last is not None and last is not self.snapshots.current:
            last.close()
        self.snapshots.current.close()
        if self.pool is not None:
            self.pool.close()

    def __enter__(self) -> "SpatialQueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- introspection -----------------------------------------------------

    @property
    def epoch(self) -> int:
        """Epoch of the currently published snapshot."""
        return self.snapshots.epoch

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return len(self._pending)

    def snapshot(self) -> RTSIndex:
        """The currently published snapshot (do not mutate it)."""
        return self.snapshots.current

    def snapshot_at(self, epoch: int) -> RTSIndex:
        """A retained snapshot (``retain_snapshots=True`` only)."""
        return self.snapshots.at(epoch)

    def latency_quantiles(self) -> dict[str, float]:
        """p50/p99 service latency in microseconds (from the power-of-two
        histogram, so quantiles are bucket-resolution estimates)."""
        return {
            "p50_us": self.metrics.quantile("serve.latency_us", 0.50),
            "p99_us": self.metrics.quantile("serve.latency_us", 0.99),
        }

    # -- client API: queries ----------------------------------------------

    def submit(self, predicate: Predicate, queries, k: int | None = None,
               timeout: float | None = None):
        """Admit one query request; returns a ``concurrent.futures.Future``
        resolving to the per-request :class:`QueryResult` (or raising a
        :class:`~repro.serve.errors.ServeError`). Raises
        :class:`ServiceOverloaded` / :class:`ServiceClosed` synchronously
        at admission."""
        seed = self.snapshots.current
        payload = normalize_payload(predicate, queries, seed.ndim, seed.dtype)
        timeout = timeout if timeout is not None else self.config.default_timeout
        deadline = time.monotonic() + timeout if timeout is not None else None
        req = QueryRequest(
            predicate=predicate,
            payload=payload,
            n_queries=len(payload),
            k=k,
            deadline=deadline,
        )
        with self._cond:
            if self._closed:
                raise ServiceClosed("service is closed")
            if len(self._pending) >= self.config.max_queue_depth:
                self.metrics.inc("serve.rejected")
                raise ServiceOverloaded(
                    f"queue depth {len(self._pending)} at max_queue_depth="
                    f"{self.config.max_queue_depth}"
                )
            self._pending.append(req)
            self.metrics.inc("serve.requests")
            self.metrics.set_gauge("serve.queue_depth", len(self._pending))
            self._cond.notify()
        return req.future

    def query(self, predicate: Predicate, queries, k: int | None = None,
              timeout: float | None = None) -> QueryResult:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(predicate, queries, k=k, timeout=timeout).result()

    def query_points(self, points, **kw) -> QueryResult:
        return self.query(Predicate.CONTAINS_POINT, points, **kw)

    def query_contains(self, rects, **kw) -> QueryResult:
        return self.query(Predicate.RANGE_CONTAINS, rects, **kw)

    def query_intersects(self, rects, k: int | None = None, **kw) -> QueryResult:
        return self.query(Predicate.RANGE_INTERSECTS, rects, k=k, **kw)

    # -- client API: mutations (single writer) -----------------------------

    def _mutate(self, name: str, op):
        with self._lock:
            # Under the lock: close() publishes _closed under the same
            # lock, so a writer can't read a torn flag. A close racing
            # past this check only wastes a fork — the published epoch
            # is never read again after close.
            if self._closed:
                raise ServiceClosed("service is closed")
        out = self.snapshots.apply(op)
        if self.pool is not None:
            try:
                self.pool.publish(self.snapshots.current)
            except RuntimeError:
                # Pool closed by a racing close(): the epoch will never
                # be served, so losing the publication is harmless.
                pass
        self.metrics.inc("serve.mutations")
        self.metrics.inc(f"serve.mutations.{name}")
        self.metrics.set_gauge("serve.epoch", self.snapshots.epoch)
        return out

    def insert(self, data):
        """Insert rectangles; publishes a new epoch. Returns global ids."""
        return self._mutate("insert", lambda ix: ix.insert(data))

    def delete(self, ids) -> None:
        self._mutate("delete", lambda ix: ix.delete(ids))

    def update(self, ids, new_data) -> None:
        self._mutate("update", lambda ix: ix.update(ids, new_data))

    def rebuild(self) -> None:
        self._mutate("rebuild", lambda ix: ix.rebuild())

    def compact(self, reason: str = "manual") -> dict:  # thread: main, repro-churn-compactor
        """Fold the churn delta into a fresh main structure and publish
        the compacted index as a new epoch (churn-enabled services only).
        Readers keep draining their pinned epoch meanwhile; shm workers
        adopt the compacted epoch like any other publication."""
        if not hasattr(self.snapshots.current, "compact"):
            raise TypeError(
                "compact() requires a churn-enabled service "
                "(ServiceConfig(churn=...) or a ChurnIndex seed)"
            )
        return self._mutate("compact", lambda ix: ix.compact(reason=reason))

    # -- scheduler ---------------------------------------------------------

    def _collect_batch(self) -> list[QueryRequest] | None:  # thread: repro-serve-scheduler
        """Block until a batch is ready (or the service drains); FIFO
        prefix coalescing with a bounded linger for stragglers."""
        with self._cond:
            while not self._pending and not self._closed:
                self._cond.wait()
            if not self._pending:
                return None  # closed and drained
            batch = take_compatible(self._pending, self.policy.max_batch)
            if self.policy.max_wait > 0 and len(batch) < self.policy.max_batch:
                key = batch[0].batch_key()
                end = time.monotonic() + self.policy.max_wait
                while len(batch) < self.policy.max_batch and not self._closed:
                    if self._pending:
                        if self._pending[0].batch_key() != key:
                            break  # incompatible head: dispatch now, keep FIFO
                        batch.append(self._pending.popleft())
                        continue
                    remaining = end - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
            self.metrics.set_gauge("serve.queue_depth", len(self._pending))
            return batch

    def _complete(self, req: QueryRequest, result: QueryResult) -> None:  # thread: repro-serve-scheduler
        latency_us = (time.monotonic() - req.enqueue_t) * 1e6
        self.metrics.observe("serve.latency_us", latency_us)
        self.metrics.inc("serve.completed")
        req.future.set_result(result)

    # thread: repro-serve-scheduler
    def _admit_batch(
        self, batch: list[QueryRequest], epoch: int, now: float
    ) -> list[tuple[QueryRequest, tuple | None]]:
        """Deadline and cache admission for one collected batch: expired
        requests fail, cache hits complete immediately; the survivors are
        returned with their cache keys for post-execution insertion."""
        live: list[tuple[QueryRequest, tuple | None]] = []
        for req in batch:
            if req.expired(now):
                self.metrics.inc("serve.deadline_missed")
                req.future.set_exception(
                    DeadlineExceeded(
                        f"deadline passed {now - req.deadline:.4f}s before dispatch"
                    )
                )
                continue
            key = None
            if self.cache.capacity:
                key = self.cache.key(
                    req.predicate, query_digest(req.payload), req.k, epoch
                )
                hit = self.cache.get(key)
                if hit is not None:
                    self.metrics.inc("serve.cache.hits")
                    self._complete(req, hit)
                    continue
                self.metrics.inc("serve.cache.misses")
            live.append((req, key))
        return live

    # thread: repro-serve-scheduler
    def _finish_batch(
        self,
        result: QueryResult,
        live: list[tuple[QueryRequest, tuple | None]],
        epoch: int,
    ) -> None:
        """Account for one executed batch and scatter it per request."""
        requests = [req for req, _ in live]
        self.metrics.inc("serve.batches")
        self.metrics.inc("serve.batched_requests", len(requests))
        self.metrics.observe("serve.batch_size", len(requests))
        parts = split_batch(result, requests, epoch)
        for (req, key), part in zip(live, parts):
            if key is not None:
                self.cache.put(key, part)
            self._complete(req, part)

    def _run(self) -> None:  # thread: repro-serve-scheduler
        while True:
            batch = self._collect_batch()
            if batch is None:
                return
            snapshot = self.snapshots.current  # epoch pinned for the batch
            prev = self._last_served
            if prev is not None and prev is not snapshot and not self.snapshots.retain_all:
                # Superseded epoch: release its executor pool references
                # now rather than at service close, so a long-lived
                # service under mutation load doesn't accumulate one
                # pool reference per published epoch. RTSIndex.close()
                # is non-destructive — an external holder of the old
                # snapshot can still query it (it re-acquires a pool).
                prev.close()
            self._last_served = snapshot
            epoch = snapshot.epoch
            live = self._admit_batch(batch, epoch, time.monotonic())
            if not live:
                continue
            requests = [req for req, _ in live]
            try:
                with self.tracer.span(
                    "serve.batch",
                    epoch=epoch,
                    batch_size=len(requests),
                    predicate=requests[0].predicate.value,
                    n_queries=sum(r.n_queries for r in requests),
                ):
                    # None in the config means "fixed config": translate
                    # to the explicit "off" so a planner installed on the
                    # snapshot index itself cannot re-enable planning.
                    result = execute_batch(
                        snapshot, requests, planner=self.config.planner or "off"
                    )
            except BaseException as err:  # complete, don't kill the scheduler
                for req, _ in live:
                    req.future.set_exception(err)
                self.metrics.inc("serve.batch_errors")
                continue
            self.metrics.inc("serve.sim_time", result.sim_time)
            self._finish_batch(result, live, epoch)

    # -- scheduler: process-pool mode --------------------------------------

    def _collect_wave(self, max_inflight: int) -> list[list[QueryRequest]] | None:  # thread: repro-serve-scheduler
        """One wave of up to ``max_inflight`` batches: the first batch is
        collected with the normal blocking/linger policy, the rest drain
        whatever is already queued (no extra linger — the wave should
        dispatch as soon as there is work to overlap)."""
        first = self._collect_batch()
        if first is None:
            return None
        wave = [first]
        with self._cond:
            while len(wave) < max_inflight and self._pending:
                wave.append(take_compatible(self._pending, self.policy.max_batch))
            self.metrics.set_gauge("serve.queue_depth", len(self._pending))
        return wave

    def _run_proc(self) -> None:  # thread: repro-serve-scheduler
        """Scheduler loop for ``workers > 0``: collect a wave of batches,
        dispatch them across the process pool in one call, scatter the
        per-batch results. Execution order inside a wave follows
        admission order (results are merged per batch in spec order), so
        responses stay bit-identical to the in-process scheduler; only
        the simulated clock reflects the overlap."""
        pool = self.pool
        max_inflight = self.config.max_inflight or max(2 * self.config.workers, 1)
        while True:
            wave = self._collect_wave(max_inflight)
            if wave is None:
                return
            snapshot = self.snapshots.current  # epoch pinned for the wave
            prev = self._last_served
            if prev is not None and prev is not snapshot and not self.snapshots.retain_all:
                prev.close()
            self._last_served = snapshot
            epoch = snapshot.epoch
            now = time.monotonic()
            live_batches = []
            specs = []
            for batch in wave:
                live = self._admit_batch(batch, epoch, now)
                if not live:
                    continue
                first = live[0][0]
                payload = concat_payloads(
                    first.predicate, [req.payload for req, _ in live]
                )
                live_batches.append(live)
                specs.append((first.predicate, payload, first.k))
            if not live_batches:
                continue
            try:
                with self.tracer.span(
                    "serve.wave",
                    epoch=epoch,
                    n_batches=len(specs),
                    n_queries=sum(req.n_queries for lv in live_batches for req, _ in lv),
                ):
                    results, wave_sim = pool.dispatch(snapshot, specs)
            except BaseException as err:  # complete, don't kill the scheduler
                for live in live_batches:
                    for req, _ in live:
                        req.future.set_exception(err)
                self.metrics.inc("serve.batch_errors")
                continue
            self.metrics.inc("serve.sim_time", wave_sim)
            self.metrics.inc("serve.waves")
            for live, result in zip(live_batches, results):
                if isinstance(result, BaseException):
                    for req, _ in live:
                        req.future.set_exception(result)
                    self.metrics.inc("serve.batch_errors")
                    continue
                self._finish_batch(result, live, epoch)

    def __repr__(self) -> str:
        return (
            f"SpatialQueryService(epoch={self.epoch}, queue={self.queue_depth}, "
            f"max_batch={self.policy.max_batch}, cache={self.cache!r})"
        )
