"""Multi-process sharded serving over shared-memory epoch snapshots.

This is the "break the GIL" serving architecture: N worker processes,
each attaching every published epoch zero-copy through
:mod:`repro.serve.shm`, a consistent-hash router fanning shard tasks
across them, and the parent scatter-merging shard results through the
existing canonical pair order. The contract is the same transparency the
in-process scheduler guarantees — responses (pairs, per-phase simulated
times, counters, k) are **bit-identical** to single-process serving —
while simulated throughput scales with workers because independent
batches (and the shards of large batches) execute on parallel traversal
units.

How equivalence is engineered, piece by piece:

- **Shard kernels** are the exact closures the in-process sharded path
  runs (:func:`~repro.core.queries.point.make_point_work`,
  :func:`~repro.core.queries.contains.make_contains_work`,
  :class:`~repro.core.queries.intersects.IntersectsContext`), executed
  against an adopted shared-memory index whose buffers are byte-wise
  equal to the owner's. Row slicing commutes with every operation in
  them, so shard replies equal in-process shard results.
- **Counters** come back as per-ray arrays and are scatter-merged with
  :func:`~repro.rtcore.stats.merge_shard_stats` — integer addition into
  disjoint slots, so the merged launch counters equal a serial launch's.
- **Phases** are computed centrally from the merged counters on the
  owning snapshot (same platform, same node counts), reproducing the
  serial float arithmetic exactly.
- **k prediction** consumes the snapshot's RNG, so the dispatcher
  resolves k centrally, in admission order, on the owning snapshot —
  exactly when the in-process scheduler would have — and ships the
  pinned k to workers.

Epoch lifecycle: the writer publishes each epoch as one shared-memory
segment (create → copy → manifest); workers attach on the first task of
that epoch and drop attachments the dispatcher no longer lists as live.
Published epochs are refcounted by in-flight tasks; once superseded and
idle they are unlinked (POSIX deferred delete keeps existing worker
mappings valid). ``close()`` unlinks everything and asserts nothing
leaked.

Simulated-time accounting: the wave makespan. Each wave of batches is
priced as the serial prefix every dispatch pays once per intersects
batch (k prediction + query-side BVH build) plus the busiest worker's
clock — the sum over its assigned tasks of the shard launch time (from
that shard's own counters) plus the per-task dispatch tax
(:data:`~repro.perfmodel.calibration.PROC_DISPATCH_SIM_S` and the
payload-byte cost). One worker degenerates to the single-process cost
plus the dispatch tax; N workers overlap independent launches, which is
where the QPS scaling comes from (launch overhead dominates micro-batch
serving, and overlapping launches is the only way to amortize it across
*different* batches).
"""

from __future__ import annotations

import os
from bisect import bisect_right
from hashlib import sha1
from multiprocessing import connection, get_context, resource_tracker

import numpy as np

from repro.core.index import Predicate, RTSIndex
from repro.core.queries.contains import make_contains_work
from repro.core.queries.intersects import IntersectsContext, resolve_k
from repro.core.queries.point import make_point_work
from repro.core.result import QueryResult
from repro.geometry.boxes import Boxes
from repro.lockorder import make_lock
from repro.obs.tracer import NULL_TRACER
from repro.parallel.executor import (
    MIN_PROC_SHARD,
    process_priced_shards,
    shard_queries,
)
from repro.perfmodel import calibration as C
from repro.perfmodel.build import BuildModel
from repro.perfmodel.querycost import rt_cast_cost
from repro.rtcore.stats import TraversalStats, merge_shard_stats
from repro.serve.cache import query_digest
from repro.serve.errors import WorkerFailed
from repro.serve.shm import adopt_index, publish_index

#: Times a task may be resubmitted after worker deaths before the batch
#: fails with :class:`WorkerFailed`.
MAX_TASK_ATTEMPTS = 3

#: Per-worker IntersectsContext cache entries (keyed by
#: ``(epoch, digest, k)``); oldest evicted beyond this.
CTX_CACHE_SIZE = 8


class HashRing:
    """Consistent-hash router over worker slots.

    ``vnodes`` virtual nodes per slot smooth the assignment; hashing is
    SHA-1 so routing is deterministic across processes and runs (the
    wave-makespan accounting depends on assignment being a pure function
    of the task key). Slots survive worker death — a respawned worker
    takes over its predecessor's slot, so resubmitted shards route
    identically.
    """

    def __init__(self, n_slots: int, vnodes: int = 64):
        points = []
        for slot in range(n_slots):
            for v in range(vnodes):
                h = int.from_bytes(
                    sha1(f"{slot}:{v}".encode()).digest()[:8], "big"
                )
                points.append((h, slot))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._slots = [s for _, s in points]

    def slot_for(self, key: str) -> int:
        h = int.from_bytes(sha1(key.encode()).digest()[:8], "big")
        i = bisect_right(self._hashes, h) % len(self._hashes)
        return self._slots[i]


# --- wire helpers ------------------------------------------------------------


def _stats_to_wire(stats: TraversalStats) -> dict:
    return {
        "nodes": stats.nodes_visited,
        "is_inv": stats.is_invocations,
        "res": stats.results_emitted,
    }


def _stats_from_wire(d: dict) -> TraversalStats:
    stats = TraversalStats(len(d["nodes"]))
    stats.nodes_visited[:] = d["nodes"]
    stats.is_invocations[:] = d["is_inv"]
    stats.results_emitted[:] = d["res"]
    return stats


# --- worker process ----------------------------------------------------------


def _run_worker_task(spec: dict, epochs: dict, ctxs: dict) -> dict:
    """Execute one shard task against the adopted epoch index."""
    index, _shm = epochs[spec["epoch"]]
    kind = spec["kind"]
    if kind == "rows":
        if spec["pred"] == Predicate.CONTAINS_POINT.value:
            work = make_point_work(index, spec["pts"])
            n = len(spec["pts"])
        else:
            work = make_contains_work(index, Boxes(spec["q_mins"], spec["q_maxs"]))
            n = len(spec["q_mins"])
        rect_ids, rows, stats, n_cand = work(np.arange(n, dtype=np.int64))
        out = _stats_to_wire(stats)
        out.update(rect_ids=rect_ids, rows=rows, n_cand=int(n_cand))
        return out
    # Intersects shards: build (or reuse) the prepared context, then run
    # the exact in-process shard kernel over the global index rows.
    key = (spec["epoch"], spec["digest"], spec["k"])
    ctx = ctxs.get(key)
    if ctx is None:
        q = Boxes(spec["q_mins"], spec["q_maxs"])
        ctx = ctxs[key] = IntersectsContext(index, q, spec["k"])
        while len(ctxs) > CTX_CACHE_SIZE:
            ctxs.pop(next(iter(ctxs)))
    kernel = ctx.fwd_work if kind == "fwd" else ctx.bwd_work
    rect_ids, rows, stats = kernel(spec["idx"])
    out = _stats_to_wire(stats)
    out.update(rect_ids=rect_ids, rows=rows)
    return out


def _worker_main(worker_id: int, conn) -> None:
    """Worker loop: attach epochs, run shard tasks, report results.

    Runs in a forked child. Attachments are cached per epoch and dropped
    as soon as a task's ``live`` list stops naming them; prepared
    intersects contexts are cached per ``(epoch, digest, k)``.
    """
    import traceback

    epochs: dict[int, tuple] = {}
    ctxs: dict[tuple, IntersectsContext] = {}

    def drop_epoch(epoch: int) -> None:
        _index, shm = epochs.pop(epoch)
        for key in [c for c in ctxs if c[0] == epoch]:
            ctxs.pop(key)
        shm.close()

    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "close":
                break
            if kind == "manifest":
                manifest = msg[1]
                epoch = int(manifest["meta"]["epoch"])
                if epoch not in epochs:
                    # owner: cached in `epochs`; drop_epoch / the finally
                    # below close every cached attachment.
                    epochs[epoch] = adopt_index(manifest)
                continue
            # ("task", task_id, spec)
            task_id, spec = msg[1], msg[2]
            try:
                reply = _run_worker_task(spec, epochs, ctxs)
                conn.send(("ok", task_id, worker_id, reply))
            except BaseException:
                conn.send(("err", task_id, worker_id, traceback.format_exc()))
            live = spec.get("live")
            if live is not None:
                for epoch in [e for e in epochs if e not in live]:
                    drop_epoch(epoch)
    finally:
        for epoch in list(epochs):
            drop_epoch(epoch)
        conn.close()


# --- parent-side pool --------------------------------------------------------


class _Worker:
    """Parent-side handle for one worker slot."""

    __slots__ = ("slot", "process", "conn", "seen_epochs")

    def __init__(self, slot: int, process, conn):
        self.slot = slot
        self.process = process
        self.conn = conn
        #: Epochs whose manifest this worker process has been sent.
        self.seen_epochs: set[int] = set()


class ProcessPool:
    """N worker processes serving shard tasks over shared-memory epochs.

    Owned by :class:`~repro.serve.service.SpatialQueryService` when
    ``ServiceConfig.workers > 0``; usable standalone for tests. The
    parent is the only writer: it publishes epochs (``publish``),
    dispatches waves of batches (``dispatch`` — called from a single
    scheduler thread), and unlinks retired segments. The pool lock
    (rank ``serve.procpool``) guards registry and worker-table state
    only — it is never held across an IPC wait.
    """

    def __init__(self, n_workers: int, *, min_shard: int = MIN_PROC_SHARD):
        if n_workers < 1:
            raise ValueError(f"workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        self.min_shard = int(min_shard)
        self._lock = make_lock("serve.procpool")
        self._ctx = get_context("fork")
        # The resource tracker must exist before the first fork so every
        # worker shares it (attach/unlink bookkeeping stays balanced).
        resource_tracker.ensure_running()
        self._ring = HashRing(self.n_workers)
        #: epoch -> {"manifest", "shm", "refs", "retired"}.
        self._segments: dict[int, dict] = {}
        #: Every segment name ever created (leak assertions in tests).
        self.created_segment_names: list[str] = []
        self._name_serial = 0
        self._task_serial = 0
        self._closed = False
        self._workers: list[_Worker] = [
            self._spawn(slot) for slot in range(self.n_workers)
        ]

    # -- lifecycle ---------------------------------------------------------

    def _spawn(self, slot: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(slot, child_conn),
            daemon=True,
            name=f"rts-serve-worker-{slot}",
        )
        proc.start()
        child_conn.close()
        return _Worker(slot, proc, parent_conn)

    def close(self) -> None:
        """Stop workers and unlink every still-published segment.

        Idempotent. After close, none of the segment names this pool
        created can be attached (the no-leak contract the tests assert).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers, self._workers = self._workers, []
            segments, self._segments = self._segments, {}
        for w in workers:
            try:
                w.conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for w in workers:
            w.process.join(timeout=5.0)
            if w.process.is_alive():
                w.process.terminate()
                w.process.join(timeout=5.0)
            w.conn.close()
        for seg in segments.values():
            seg["shm"].close()
            seg["shm"].unlink()

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- epoch publication -------------------------------------------------

    def publish(self, index: RTSIndex) -> dict:
        """Publish ``index``'s current epoch as a shared-memory segment.

        Idempotent per epoch (concurrent writers may race to publish the
        snapshot they just applied; the first wins). Older epochs are
        marked retired — they are unlinked as soon as no in-flight task
        references them.

        A pool serves exactly one index lineage — epochs are its version
        numbers. Publishing a *different* index that happens to carry an
        already-published epoch raises instead of silently serving stale
        geometry (the fingerprint is O(1): length plus boundary rows).
        """
        epoch = int(index.epoch)
        fp = (
            len(index),
            index._mins[:2].tobytes() + index._maxs[-2:].tobytes(),
        )
        with self._lock:
            if self._closed:
                raise RuntimeError("ProcessPool is closed")
            if epoch in self._segments:
                if self._segments[epoch]["fingerprint"] != fp:
                    raise ValueError(
                        f"epoch {epoch} already published with different "
                        "contents: a ProcessPool serves a single index "
                        "lineage — use a separate pool per index"
                    )
                return self._segments[epoch]["manifest"]
            while True:
                name = f"rts{os.getpid()}x{self._name_serial}"
                self._name_serial += 1
                try:
                    manifest, shm = publish_index(index, name)
                    break
                except FileExistsError:
                    continue
            self.created_segment_names.append(name)
            self._segments[epoch] = {
                "manifest": manifest,
                "shm": shm,
                "refs": 0,
                "retired": False,
                "fingerprint": fp,
            }
            # Retire relative to the newest published epoch — racing
            # writers may publish out of order, and a late-published old
            # epoch must not be treated as current.
            newest = max(self._segments)
            for e, seg in self._segments.items():
                if e < newest:
                    seg["retired"] = True
            self._unlink_retired_locked()
            return manifest

    def _unlink_retired_locked(self) -> None:
        for e in [
            e
            for e, seg in self._segments.items()
            if seg["retired"] and seg["refs"] == 0
        ]:
            seg = self._segments.pop(e)
            seg["shm"].close()
            seg["shm"].unlink()

    @property
    def live_epochs(self) -> list[int]:
        with self._lock:
            return sorted(self._segments)

    # -- wave dispatch -----------------------------------------------------

    def dispatch(self, snapshot: RTSIndex, specs: list) -> tuple[list, float]:
        """Execute one wave of batches against ``snapshot``.

        ``specs`` is a list of ``(predicate, payload, k)`` triples in
        admission order (``payload`` already normalized: an ``(n, d)``
        point array or a :class:`Boxes`). Returns ``(results, wave_sim)``
        where ``results[i]`` is the batch's :class:`QueryResult` (built
        exactly as the in-process path builds it) or an exception, and
        ``wave_sim`` is the simulated makespan of the wave.
        """
        tracer = getattr(snapshot, "tracer", NULL_TRACER)
        self.publish(snapshot)
        epoch = int(snapshot.epoch)
        with self._lock:
            if self._closed:
                raise RuntimeError("ProcessPool is closed")
            live = sorted(self._segments)
            manifest = self._segments[epoch]["manifest"]
            # Wave-level ref: a concurrent writer publishing a newer
            # epoch retires this one, but it must stay linked until every
            # worker in this wave has attached (all replies collected
            # implies all manifests were processed).
            self._segments[epoch]["refs"] += 1
        try:
            return self._dispatch_wave(
                snapshot, specs, epoch, live, manifest, tracer
            )
        finally:
            with self._lock:
                seg = self._segments.get(epoch)
                if seg is not None:
                    seg["refs"] -= 1
                self._unlink_retired_locked()

    def _dispatch_wave(
        self, snapshot, specs, epoch, live, manifest, tracer
    ) -> tuple[list, float]:
        total_nodes = snapshot.total_nodes()

        batches: list[dict] = []
        tasks: list[dict] = []
        serial_sim = 0.0

        for i, (pred, payload, k_req) in enumerate(specs):
            batch: dict = {"pred": pred, "error": None}
            batches.append(batch)
            if pred is Predicate.RANGE_INTERSECTS:
                q = payload.astype(snapshot.dtype)
                live_ids = np.nonzero(~snapshot._deleted)[0]
                n_s = len(q)
                if n_s == 0 or len(live_ids) == 0:
                    batch["kind"] = "local"
                    batch["result"] = snapshot.query(
                        pred, payload, k=k_req, planner="off"
                    )
                    serial_sim += batch["result"].sim_time
                    continue
                # k is resolved here — centrally, in admission order, on
                # the owning snapshot — so the RNG stream advances exactly
                # as in-process execution would have advanced it.
                k, k_sim = resolve_k(snapshot, q, live_ids, k_req, tracer=tracer)
                m = len(live_ids) * k
                digest = query_digest(q)
                s_f = process_priced_shards(
                    n_s,
                    self.n_workers,
                    rt_cast_cost(n_s, len(live_ids)),
                    min_shard=self.min_shard,
                )
                s_b = process_priced_shards(
                    m,
                    self.n_workers,
                    rt_cast_cost(m, n_s),
                    min_shard=self.min_shard,
                )
                f_shards = shard_queries(n_s, s_f)
                b_shards = shard_queries(m, s_b)
                batch.update(
                    kind="ix",
                    n_s=n_s,
                    m=m,
                    k=k,
                    k_sim=k_sim,
                    f_shards=f_shards,
                    b_shards=b_shards,
                    f_parts=[None] * len(f_shards),
                    b_parts=[None] * len(b_shards),
                    pending=len(f_shards) + len(b_shards),
                )
                serial_sim += k_sim + BuildModel.optix_gas_build(n_s)
                base = {
                    "epoch": epoch,
                    "q_mins": q.mins,
                    "q_maxs": q.maxs,
                    "k": k,
                    "digest": digest,
                    "live": live,
                }
                for part, shards in (("fwd", f_shards), ("bwd", b_shards)):
                    for j, idx in enumerate(shards):
                        tasks.append(
                            {
                                "batch": i,
                                "part": part,
                                "slot_idx": j,
                                "key": f"{digest}:{part}:{j}",
                                "spec": {**base, "kind": part, "idx": idx},
                            }
                        )
                continue
            # Point / Range-Contains: one row-shardable launch.
            if pred is Predicate.CONTAINS_POINT:
                pts = np.ascontiguousarray(payload, dtype=snapshot.dtype)
                n = len(pts)
            else:
                q = payload.astype(snapshot.dtype)
                n = len(q)
            if n == 0 or len(snapshot) == 0:
                batch["kind"] = "local"
                batch["result"] = snapshot.query(pred, payload, k=k_req, planner="off")
                serial_sim += batch["result"].sim_time
                continue
            digest = query_digest(payload)
            s = process_priced_shards(
                n,
                self.n_workers,
                rt_cast_cost(n, snapshot.n_rects),
                min_shard=self.min_shard,
            )
            shards = shard_queries(n, s)
            batch.update(
                kind="rows",
                n=n,
                shards=shards,
                parts=[None] * len(shards),
                pending=len(shards),
            )
            for j, idx in enumerate(shards):
                if pred is Predicate.CONTAINS_POINT:
                    spec = {"kind": "rows", "pred": pred.value, "epoch": epoch,
                            "pts": pts[idx], "live": live}
                else:
                    spec = {"kind": "rows", "pred": pred.value, "epoch": epoch,
                            "q_mins": q.mins[idx], "q_maxs": q.maxs[idx],
                            "live": live}
                tasks.append(
                    {
                        "batch": i,
                        "part": "rows",
                        "slot_idx": j,
                        "key": f"{digest}:rows:{j}",
                        "spec": spec,
                    }
                )

        worker_clock = [0.0] * self.n_workers
        if tasks:
            self._run_tasks(tasks, batches, manifest, worker_clock, snapshot)

        results = self._merge_batches(batches, snapshot, total_nodes)
        wave_sim = serial_sim + max(worker_clock, default=0.0)
        return results, wave_sim

    # -- task execution ----------------------------------------------------

    def _send_task(self, task: dict) -> None:
        # The slot lookup happens under the lock: _recover() may be
        # swapping a dead worker's slot entry from another wave's thread,
        # and an unlocked read could hand back the already-closed worker.
        with self._lock:
            worker = self._workers[task["slot"]]
        spec_epoch = task["spec"]["epoch"]
        if spec_epoch not in worker.seen_epochs:
            with self._lock:
                seg = self._segments.get(spec_epoch)
                manifest = seg["manifest"] if seg else None
            if manifest is None:
                raise WorkerFailed(f"epoch {spec_epoch} no longer published")
            worker.conn.send(("manifest", manifest))
            worker.seen_epochs.add(spec_epoch)
        worker.conn.send(("task", task["id"], task["spec"]))

    def _run_tasks(self, tasks, batches, manifest, worker_clock, snapshot) -> None:
        """Route, send and collect one wave's shard tasks.

        Routing is consistent-hash on the batch part's digest with
        round-robin shard fan-out from the home slot; each completed task
        adds its shard launch time plus the dispatch tax to its worker's
        simulated clock. Worker death mid-wave resubmits that worker's
        in-flight tasks to a respawned process on the same slot (the
        epoch segment is still published, so the new worker attaches and
        the wave completes without a torn epoch).
        """
        inflight: dict[int, dict] = {}
        for task in tasks:
            # Consistent hash picks the batch part's *home* slot; shards
            # fan out round-robin from there. Affinity is preserved (the
            # same digest lands on the same workers every wave, so epoch
            # replay reuses attachments and contexts) while the shards
            # of one launch never collide on a worker — a straight
            # per-shard hash would stack ~half of an s == n_workers
            # split on one process and forfeit the makespan win.
            home = self._ring.slot_for(task["key"].rsplit(":", 1)[0])
            task["slot"] = (home + task["slot_idx"]) % self.n_workers
            task["attempts"] = 0
            task["id"] = self._task_serial
            self._task_serial += 1
            payload_bytes = sum(
                int(v.nbytes)
                for v in task["spec"].values()
                if isinstance(v, np.ndarray)
            )
            task["dispatch_sim"] = (
                C.PROC_DISPATCH_SIM_S + payload_bytes * C.PROC_PAYLOAD_BYTE_SIM_S
            )
        with self._lock:
            for task in tasks:
                if not self._workers[task["slot"]].process.is_alive():
                    self._respawn_locked(task["slot"])
        for task in tasks:
            self._send_task(task)
            inflight[task["id"]] = task

        while inflight:
            # Snapshot the slot table under the lock each pass (a respawn
            # replaces list entries); the blocking wait stays outside it.
            with self._lock:
                conns = {self._workers[t["slot"]].conn for t in inflight.values()}
            ready = connection.wait(list(conns), timeout=30.0)
            if not ready:
                # Nothing readable and nobody died: keep waiting (a
                # huge shard can legitimately run long on 1 CPU).
                with self._lock:
                    dead = [
                        w.slot
                        for w in self._workers
                        if not w.process.is_alive()
                        and any(t["slot"] == w.slot for t in inflight.values())
                    ]
                for slot in dead:
                    self._recover(slot, inflight, batches)
                continue
            for conn_ in ready:
                with self._lock:
                    slot = next(
                        w.slot for w in self._workers if w.conn is conn_
                    )
                try:
                    msg = conn_.recv()
                except (EOFError, OSError):
                    self._recover(slot, inflight, batches)
                    continue
                kind, task_id = msg[0], msg[1]
                task = inflight.pop(task_id, None)
                if task is None:
                    continue  # reply from a pre-fault duplicate
                batch = batches[task["batch"]]
                if kind == "err":
                    if batch["error"] is None:
                        batch["error"] = WorkerFailed(
                            f"worker {msg[2]} failed shard "
                            f"{task['part']}[{task['slot_idx']}]:\n{msg[3]}"
                        )
                    continue
                reply = msg[3]
                stats = _stats_from_wire(reply)
                part = (reply["rect_ids"], reply["rows"], stats,
                        reply.get("n_cand", 0))
                if task["part"] == "rows":
                    batch["parts"][task["slot_idx"]] = part
                elif task["part"] == "fwd":
                    batch["f_parts"][task["slot_idx"]] = part
                else:
                    batch["b_parts"][task["slot_idx"]] = part
                nodes = (
                    2 * batch["n_s"]
                    if task["part"] == "bwd"
                    else snapshot.total_nodes()
                )
                worker_clock[task["slot"]] += (
                    snapshot.platform.query_time(stats, nodes)
                    + task["dispatch_sim"]
                )

    def _respawn_locked(self, slot: int) -> None:
        old = self._workers[slot]
        old.conn.close()
        if old.process.is_alive():
            old.process.terminate()
        old.process.join(timeout=5.0)
        self._workers[slot] = self._spawn(slot)

    def _recover(self, slot: int, inflight: dict, batches: list) -> None:
        """A worker died: respawn its slot and resubmit its shards."""
        with self._lock:
            self._respawn_locked(slot)
        stranded = [t for t in inflight.values() if t["slot"] == slot]
        for task in stranded:
            task["attempts"] += 1
            if task["attempts"] >= MAX_TASK_ATTEMPTS:
                del inflight[task["id"]]
                batch = batches[task["batch"]]
                if batch["error"] is None:
                    batch["error"] = WorkerFailed(
                        f"shard {task['part']}[{task['slot_idx']}] lost "
                        f"{task['attempts']} workers; giving up"
                    )
                continue
            self._send_task(task)

    # -- merge -------------------------------------------------------------

    def _merge_batches(self, batches, snapshot, total_nodes) -> list:
        """Rebuild each batch's :class:`QueryResult` from its shard
        replies, exactly as the in-process query functions would."""
        results = []
        for batch in batches:
            if batch["error"] is not None:
                results.append(batch["error"])
                continue
            if batch["kind"] == "local":
                results.append(batch["result"])
                continue
            if batch["kind"] == "rows":
                parts, shards = batch["parts"], batch["shards"]
                rect_ids = np.concatenate([p[0] for p in parts])
                query_ids = np.concatenate(
                    [idx[p[1]] for p, idx in zip(parts, shards)]
                )
                stats = merge_shard_stats(
                    batch["n"], [(p[2], s) for p, s in zip(parts, shards)]
                )
                phases = {
                    "cast": snapshot.platform.query_time(stats, total_nodes)
                }
                meta = {
                    "stats": stats.totals(),
                    "stats_obj": stats,
                    "n_candidates": int(sum(p[3] for p in parts)),
                    "n_shards": len(shards),
                }
                results.append(QueryResult(rect_ids, query_ids, phases, meta))
                continue
            # Intersects: forward + backward concat in shard order, then
            # the canonicalizing QueryResult constructor — identical to
            # run_intersects_query's tail.
            f_parts, f_shards = batch["f_parts"], batch["f_shards"]
            b_parts, b_shards = batch["b_parts"], batch["b_shards"]
            fr = np.concatenate([p[0] for p in f_parts])
            fq = np.concatenate([p[1] for p in f_parts])
            br = np.concatenate([p[0] for p in b_parts])
            bq = np.concatenate([p[1] for p in b_parts])
            stats_f = merge_shard_stats(
                batch["n_s"], [(p[2], s) for p, s in zip(f_parts, f_shards)]
            )
            stats_b = merge_shard_stats(
                batch["m"], [(p[2], s) for p, s in zip(b_parts, b_shards)]
            )
            phases = {
                "k_prediction": batch["k_sim"],
                "bvh_build": BuildModel.optix_gas_build(batch["n_s"]),
                "forward_cast": snapshot.platform.query_time(
                    stats_f, total_nodes
                ),
                "backward_cast": snapshot.platform.query_time(
                    stats_b, 2 * batch["n_s"]
                ),
            }
            meta = {
                "k": int(batch["k"]),
                "forward_stats": stats_f.totals(),
                "backward_stats": stats_b.totals(),
                "forward_stats_obj": stats_f,
                "backward_stats_obj": stats_b,
                "n_shards": len(f_shards) + len(b_shards),
            }
            results.append(
                QueryResult(
                    np.concatenate([fr, br]),
                    np.concatenate([fq, bq]),
                    phases,
                    meta,
                )
            )
        return results
