"""Serving benchmark: throughput and tail latency vs. offered load.

Runs a closed-loop load-generation matrix over (client count,
write ratio, max_batch) cells — each cell a fresh index + service — and
writes ``BENCH_serve.json``. Two families of numbers come out:

- **wall-clock**: requests/s and p50/p99 latency, machine-dependent,
  what a capacity planner reads;
- **simulated**: queries per simulated second of launch time
  (``sim_qps``), machine-independent, which isolates the batching win —
  one launch for B requests pays the fixed launch overhead once, so
  ``sim_qps`` at ``max_batch>=16`` must beat ``max_batch=1`` (the repo's
  acceptance gate; see tests/serve/test_batcher.py for the deterministic
  version).

A third section, ``process_scaling``, replays one deterministic mixed
read/write session at each ``--workers`` count (0 = in-process) and
reports per-count ``sim_qps`` plus a response digest: the digests must
match bit-for-bit across counts while the simulated throughput scales
with the worker pool (the multi-process sharding win; see
repro.serve.procpool).

Usage::

    python -m repro.serve.bench --out BENCH_serve.json --metrics-csv serve_metrics.csv
    python -m repro.serve.bench --requests 200 --clients 1 32 --max-batch 1 16
    python -m repro.serve.bench --workers 0 2 4
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.core.index import RTSIndex
from repro.geometry.boxes import Boxes
from repro.serve.loadgen import LoadGenerator, WorkloadMix
from repro.serve.service import ServiceConfig, SpatialQueryService

SCHEMA = "repro.serve.bench/v1"


def build_index(n_rects: int, seed: int, domain: float = 100.0) -> RTSIndex:
    rng = np.random.default_rng(seed)
    lo = rng.random((n_rects, 2)) * domain
    data = Boxes(lo, lo + rng.random((n_rects, 2)) * 3.0 + 0.05, dtype=np.float32)
    return RTSIndex(data, dtype=np.float32, seed=seed)


def run_cell(
    *,
    n_rects: int,
    n_requests: int,
    n_clients: int,
    write_ratio: float,
    max_batch: int,
    max_wait: float,
    queries_per_request: int,
    cache_size: int,
    seed: int,
    workers: int = 0,
) -> dict:
    """One benchmark cell: fresh index, fresh service, one closed loop."""
    config = ServiceConfig(
        max_queue_depth=max(64, 4 * n_clients),
        max_batch=max_batch,
        max_wait=max_wait,
        cache_size=cache_size,
        workers=workers,
    )
    mix = WorkloadMix(
        write_ratio=write_ratio, queries_per_request=queries_per_request
    )
    with SpatialQueryService(build_index(n_rects, seed), config) as service:
        gen = LoadGenerator(
            service,
            n_clients=n_clients,
            n_requests=n_requests,
            mix=mix,
            seed=seed,
        )
        report = gen.run()
        row = report.to_dict()
        # The cache's own locked snapshot: consistent hits/misses/rate at
        # end of run (the loadgen's metric deltas remain the per-window
        # view; this is the authoritative cache-side count).
        row["cache"] = service.cache.stats()
    row["max_batch"] = max_batch
    row["workers"] = workers
    return row


def run_process_scaling(
    *,
    n_rects: int,
    n_steps: int,
    requests_per_step: int,
    queries_per_request: int,
    workers_list: list[int],
    seed: int,
) -> dict:
    """Deterministic staged scaling experiment for process-sharded serving.

    Replays one identical mixed read/write session — point-query waves
    with an insert after every other step — at each worker count. Every
    run executes the same logical work against the same epoch sequence,
    so two properties fall out:

    - the response digest (rect/query id pairs plus serving epoch, in
      submission order) must be identical across worker counts — process
      sharding may move simulated time but never an answer; and
    - the simulated-time ratio isolates the process-sharding win: one
      wave's cast work divides across workers, paying only the modeled
      dispatch tax (``PROC_DISPATCH_SIM_S`` / ``PROC_PAYLOAD_BYTE_SIM_S``
      in repro.perfmodel.calibration).

    ``max_batch == requests_per_step`` with a generous linger makes each
    step exactly one wave in every configuration, so the comparison is
    batching-invariant.
    """
    import hashlib

    from repro.core.index import Predicate

    # Pre-generate the whole session once so every worker count replays
    # byte-identical payloads and mutations.
    rng = np.random.default_rng(seed)
    steps = []
    for step in range(n_steps):
        payloads = [
            (rng.random((queries_per_request, 2)) * 104.0).astype(np.float32)
            for _ in range(requests_per_step)
        ]
        ins = None
        if step % 2 == 0:
            lo = rng.random((20, 2)) * 100.0
            ins = Boxes(
                lo, lo + rng.random((20, 2)) * 3.0 + 0.05, dtype=np.float32
            )
        steps.append((payloads, ins))

    cells = {}
    for workers in sorted(set(workers_list)):
        config = ServiceConfig(
            max_queue_depth=max(64, 2 * requests_per_step),
            max_batch=requests_per_step,
            max_wait=0.05,  # linger long enough to coalesce each step's wave
            cache_size=0,  # no serve-cache: every request reaches the executor
            planner=None,
            workers=workers,
        )
        digest = hashlib.sha1()
        with SpatialQueryService(build_index(n_rects, seed), config) as svc:
            for payloads, ins in steps:
                futs = [
                    svc.submit(Predicate.CONTAINS_POINT, p) for p in payloads
                ]
                for fut in futs:
                    r = fut.result(timeout=600)
                    digest.update(np.ascontiguousarray(r.rect_ids).tobytes())
                    digest.update(np.ascontiguousarray(r.query_ids).tobytes())
                    digest.update(str(r.meta.get("epoch")).encode())
                if ins is not None:
                    svc.insert(ins)
            sim = float(svc.metrics.counters["serve.sim_time"])
        total = n_steps * requests_per_step * queries_per_request
        cells[workers] = {
            "workers": workers,
            "sim_time_s": sim,
            "sim_qps": total / sim if sim else 0.0,
            "digest": digest.hexdigest(),
        }

    out = {
        "n_rects": n_rects,
        "n_steps": n_steps,
        "requests_per_step": requests_per_step,
        "queries_per_request": queries_per_request,
        "writes": sum(1 for _, ins in steps if ins is not None),
        "cells": {str(w): c for w, c in cells.items()},
    }
    if 0 in cells:
        base = cells[0]
        out["bit_identical"] = all(
            c["digest"] == base["digest"] for c in cells.values()
        )
        for w, c in cells.items():
            if w and base["sim_qps"]:
                out[f"sim_speedup_workers{w}"] = c["sim_qps"] / base["sim_qps"]
    return out


def run_staged(
    *,
    n_rects: int,
    n_requests: int,
    queries_per_request: int,
    max_batches: list[int],
    seed: int,
) -> dict:
    """Deterministic batching experiment: stage identical requests before
    starting the scheduler, so every configuration executes exactly the
    same logical work and the sim-throughput ratio isolates launch-overhead
    amortization (no thread-timing noise, unlike the closed loop)."""
    from repro.core.index import Predicate

    rng = np.random.default_rng(seed)
    payloads = [
        rng.random((queries_per_request, 2)) * 104.0 for _ in range(n_requests)
    ]
    cells = {}
    for max_batch in sorted(set(max_batches)):
        config = ServiceConfig(
            max_queue_depth=max(64, 2 * n_requests),
            max_batch=max_batch,
            max_wait=0.0,
            cache_size=0,
        )
        with SpatialQueryService(
            build_index(n_rects, seed), config, autostart=False
        ) as svc:
            futures = [
                svc.submit(Predicate.CONTAINS_POINT, p.astype(np.float32))
                for p in payloads
            ]
            svc.start()
            for fut in futures:
                fut.result()
            sim = float(svc.metrics.counters["serve.sim_time"])
            cells[max_batch] = {
                "batches": int(svc.metrics.counters["serve.batches"]),
                "sim_time_s": sim,
                "sim_qps": n_requests * queries_per_request / sim if sim else 0.0,
            }
    out = {
        "n_requests": n_requests,
        "queries_per_request": queries_per_request,
        "cells": {str(b): c for b, c in cells.items()},
    }
    big = [b for b in cells if b >= 16]
    if 1 in cells and big:
        b = max(big)
        out["sim_speedup_batched_vs_unbatched"] = (
            cells[b]["sim_qps"] / cells[1]["sim_qps"]
        )
        out["max_batch"] = b
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.bench",
        description="Closed-loop serving benchmark (throughput / tail latency).",
    )
    parser.add_argument("--rects", type=int, default=20_000, help="indexed rectangles")
    parser.add_argument("--requests", type=int, default=300, help="requests per cell")
    parser.add_argument(
        "--clients", type=int, nargs="+", default=[1, 8, 32], help="closed-loop client counts"
    )
    parser.add_argument(
        "--write-ratio", type=float, nargs="+", default=[0.0, 0.1], help="mutation fractions"
    )
    parser.add_argument(
        "--max-batch", type=int, nargs="+", default=[1, 16], help="batching limits to sweep"
    )
    parser.add_argument("--max-wait", type=float, default=0.002, help="batch linger seconds")
    parser.add_argument("--queries-per-request", type=int, default=32)
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[0, 2, 4],
        help="worker-process counts for the process-scaling experiment "
        "(0 = in-process baseline)",
    )
    parser.add_argument("--cache-size", type=int, default=256)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default="BENCH_serve.json", help="JSON artifact path")
    parser.add_argument("--metrics-csv", default=None, help="also write flat CSV rows")
    args = parser.parse_args(argv)

    rows = []
    for write_ratio in args.write_ratio:
        for n_clients in args.clients:
            for max_batch in args.max_batch:
                row = run_cell(
                    n_rects=args.rects,
                    n_requests=args.requests,
                    n_clients=n_clients,
                    write_ratio=write_ratio,
                    max_batch=max_batch,
                    max_wait=args.max_wait,
                    queries_per_request=args.queries_per_request,
                    cache_size=args.cache_size,
                    seed=args.seed,
                )
                rows.append(row)
                print(
                    f"clients={n_clients:<3d} write={write_ratio:<4.2f} "
                    f"max_batch={max_batch:<3d} -> "
                    f"{row['throughput_rps']:8.1f} req/s  "
                    f"sim {row['sim_qps']:10.1f} q/sim-s  "
                    f"mean batch {row['mean_batch']:5.2f}  "
                    f"p50 {row['p50_us']:8.0f}us  p99 {row['p99_us']:8.0f}us"
                )

    # The deterministic batching claim: identical staged work, unbatched
    # vs coalesced, sim-throughput ratio = pure launch amortization.
    staged = run_staged(
        n_rects=args.rects,
        n_requests=max(args.max_batch) * 2 if args.max_batch else 32,
        queries_per_request=args.queries_per_request,
        max_batches=args.max_batch,
        seed=args.seed,
    )

    # The closed-loop batching summary, per (clients, write_ratio) pair
    # that ran both an unbatched and a >=16 configuration. A single
    # closed-loop client keeps at most one request outstanding, so
    # batching cannot engage there — only concurrent cells are compared.
    batching = []
    for write_ratio in args.write_ratio:
        for n_clients in [c for c in args.clients if c > 1]:
            cell = {
                r["max_batch"]: r
                for r in rows
                if r["n_clients"] == n_clients and r["write_ratio"] == write_ratio
            }
            big = [b for b in cell if b >= 16]
            if 1 in cell and big:
                b = max(big)
                batching.append(
                    {
                        "n_clients": n_clients,
                        "write_ratio": write_ratio,
                        "sim_qps_unbatched": cell[1]["sim_qps"],
                        "sim_qps_batched": cell[b]["sim_qps"],
                        "sim_speedup": (
                            cell[b]["sim_qps"] / cell[1]["sim_qps"]
                            if cell[1]["sim_qps"]
                            else 0.0
                        ),
                        "max_batch": b,
                    }
                )

    # The process-sharding claim: identical staged mixed read/write
    # session per worker count, digests prove bit-identity, sim-time
    # ratio shows the sharding win. Sized so one wave's cast work
    # (16 x 2048 rays against >=40k rects) dominates the per-shard
    # launch overhead and dispatch tax — the regime process sharding
    # targets; overhead-bound micro-waves stay at one shard by design
    # (see repro.parallel.executor.process_priced_shards).
    scaling = run_process_scaling(
        n_rects=max(args.rects, 40_000),
        n_steps=4,
        requests_per_step=16,
        queries_per_request=2048,
        workers_list=args.workers,
        seed=args.seed,
    )

    doc = {
        "schema": SCHEMA,
        "config": {
            "rects": args.rects,
            "requests": args.requests,
            "clients": args.clients,
            "write_ratio": args.write_ratio,
            "max_batch": args.max_batch,
            "max_wait": args.max_wait,
            "queries_per_request": args.queries_per_request,
            "cache_size": args.cache_size,
            "workers": args.workers,
            "seed": args.seed,
        },
        "rows": rows,
        "batching": batching,
        "staged_batching": staged,
        "process_scaling": scaling,
    }
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    if "sim_speedup_batched_vs_unbatched" in staged:
        print(
            f"staged batching: max_batch={staged['max_batch']} gives "
            f"{staged['sim_speedup_batched_vs_unbatched']:.2f}x sim throughput "
            "over unbatched"
        )
    for key, cell in sorted(scaling["cells"].items(), key=lambda kv: int(kv[0])):
        print(
            f"process scaling: workers={key:>2s}  "
            f"sim {cell['sim_qps']:10.1f} q/sim-s  digest {cell['digest'][:12]}"
        )
    if scaling.get("bit_identical") is not None:
        speedups = ", ".join(
            f"{k.removeprefix('sim_speedup_workers')}w={v:.2f}x"
            for k, v in sorted(scaling.items())
            if k.startswith("sim_speedup_workers")
        )
        print(
            f"process scaling: bit_identical={scaling['bit_identical']}  "
            f"sim speedup vs in-process: {speedups}"
        )
    print(f"wrote {args.out} ({len(rows)} cells)")

    if args.metrics_csv:
        import csv

        fields = sorted({k for r in rows for k in r if k not in ("per_predicate", "cache")})
        with open(args.metrics_csv, "w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=fields, extrasaction="ignore")
            writer.writeheader()
            writer.writerows(rows)
        print(f"wrote {args.metrics_csv}")

    return 0


if __name__ == "__main__":
    sys.exit(main())
