"""Epoch-keyed LRU result cache.

The cache key is ``(predicate, query-digest, k, epoch)``: the digest
covers the exact bytes the launch would traverse (coordinates, shape and
dtype of the normalized payload), and the epoch pins the snapshot the
answer was computed against. Mutations therefore invalidate the cache
*for free* — a bumped epoch simply never matches old keys, and stale
entries age out of the LRU — so a hit can never return results from a
snapshot other than the one the caller is being served from.

Cached values are the per-request :class:`~repro.core.result.QueryResult`
objects. Hits return a shallow copy (fresh ``meta`` with
``cache_hit=True``; shared pair arrays, which the API treats as
read-only) so callers can't corrupt the cached entry's metadata.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np

from repro.core.index import Predicate
from repro.core.result import QueryResult
from repro.geometry.boxes import Boxes
from repro.lockorder import make_lock


def query_digest(payload) -> str:
    """Content digest of a normalized payload (points array or Boxes)."""
    h = hashlib.sha1()
    if isinstance(payload, Boxes):
        arrays = (payload.mins, payload.maxs)
    else:
        arrays = (payload,)
    for arr in arrays:
        a = np.ascontiguousarray(arr)
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()


class ResultCache:
    """Thread-safe LRU over per-request query results.

    ``capacity`` counts entries (a per-request result is two int64 arrays
    plus metadata); ``capacity=0`` disables caching entirely — both
    :meth:`get` and :meth:`put` become no-ops, so the service code needs
    no conditionals.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._lock = make_lock("serve.cache")  # rank 30: leaf below the service lock
        self._entries: OrderedDict[tuple, QueryResult] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(predicate: Predicate, digest: str, k: int | None, epoch: int) -> tuple:
        return (predicate.value, digest, k, int(epoch))

    def get(self, key: tuple) -> QueryResult | None:
        """The cached result for ``key`` (refreshing recency), or None."""
        if self.capacity == 0:
            return None
        with self._lock:
            cached = self._entries.get(key)
            if cached is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
        return QueryResult(
            cached.rect_ids,
            cached.query_ids,
            dict(cached.phases),
            {**cached.meta, "cache_hit": True},
        )

    def put(self, key: tuple, result: QueryResult) -> None:
        with self._lock:
            if self.capacity == 0:
                return
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"ResultCache(size={len(self)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
