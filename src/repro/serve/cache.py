"""Epoch-keyed LRU result cache.

The cache key is ``(predicate, query-digest, k, epoch)``: the digest
covers the exact bytes the launch would traverse (coordinates, shape and
dtype of the normalized payload), and the epoch pins the snapshot the
answer was computed against. Mutations therefore invalidate the cache
*for free* — a bumped epoch simply never matches old keys, and stale
entries age out of the LRU — so a hit can never return results from a
snapshot other than the one the caller is being served from.

Cached values are the per-request :class:`~repro.core.result.QueryResult`
objects. The pair arrays are frozen (``flags.writeable = False``, the
same read-only contract as ``RTSIndex.all_boxes()``) at :meth:`put`
time, and hits return a shallow copy (fresh ``phases``/``meta`` dicts
with ``cache_hit=True``; shared frozen pair arrays) — so callers can
neither corrupt the cached entry's metadata nor, by writing through a
hit's arrays, corrupt every future hit on that entry.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np

from repro import tsan
from repro.core.index import Predicate
from repro.core.result import QueryResult
from repro.geometry.boxes import Boxes
from repro.lockorder import make_lock


def query_digest(payload) -> str:
    """Content digest of a normalized payload (points array or Boxes)."""
    h = hashlib.sha1()
    if isinstance(payload, Boxes):
        arrays = (payload.mins, payload.maxs)
    else:
        arrays = (payload,)
    for arr in arrays:
        a = np.ascontiguousarray(arr)
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()


@tsan.instrument("hits", "misses", containers=("_entries",))
class ResultCache:
    """Thread-safe LRU over per-request query results.

    ``capacity`` counts entries (a per-request result is two int64 arrays
    plus metadata); ``capacity=0`` disables caching entirely — both
    :meth:`get` and :meth:`put` become no-ops, so the service code needs
    no conditionals.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._lock = make_lock("serve.cache")  # rank 30: leaf below the service lock
        self._entries: OrderedDict[tuple, QueryResult] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(predicate: Predicate, digest: str, k: int | None, epoch: int) -> tuple:
        return (predicate.value, digest, k, int(epoch))

    def get(self, key: tuple) -> QueryResult | None:
        """The cached result for ``key`` (refreshing recency), or None.

        A disabled cache (``capacity=0``) still counts the lookup as a
        miss, so hit-rate accounting stays truthful instead of reporting
        0/0 while requests flow through.
        """
        with self._lock:
            if self.capacity == 0:
                self.misses += 1
                return None
            cached = self._entries.get(key)
            if cached is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
        # Share the frozen pair arrays (no copy, no re-sort); fresh
        # phases/meta so per-request annotations never alias the entry.
        return QueryResult.from_canonical(
            cached.rect_ids,
            cached.query_ids,
            cached.phases,
            {**cached.meta, "cache_hit": True},
        )

    def put(self, key: tuple, result: QueryResult) -> None:
        with self._lock:
            if self.capacity == 0:
                return
            # Freeze the pair arrays before they become shared: every
            # future hit hands these exact arrays out, and a writer
            # mutating one would silently corrupt all later hits (the
            # same read-only contract as RTSIndex.all_boxes()).
            result.rect_ids.flags.writeable = False
            result.query_ids.flags.writeable = False
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        """A consistent snapshot of the counters, taken under the lock —
        the unlocked attribute pair could be read mid-update (hits
        bumped, misses not yet) and report an impossible ratio."""
        with self._lock:
            hits, misses, entries = self.hits, self.misses, len(self._entries)
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "entries": entries,
            "capacity": self.capacity,
            "hit_rate": hits / total if total else 0.0,
        }

    @property
    def hit_rate(self) -> float:
        return self.stats()["hit_rate"]

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"ResultCache(size={s['entries']}/{self.capacity}, "
            f"hits={s['hits']}, misses={s['misses']})"
        )
