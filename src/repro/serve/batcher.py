"""Micro-batch formation and result scatter.

Per-launch overhead dominates small requests (the perfmodel charges a
fixed ``GPU_LAUNCH_OVERHEAD`` per cast, exactly the economics that drive
RTNN- and RTSpatial-style engines to coalesce logical queries into one
launch), so the scheduler merges *compatible* pending requests — same
predicate and same pinned ``k`` — into one ``RTSIndex.query()`` call.

Coalescing takes a maximal **prefix run** of the FIFO queue rather than
cherry-picking compatible requests from anywhere in it: execution order
stays exactly admission order, which keeps the service's launch sequence
(and therefore its k-prediction RNG consumption, counters and simulated
times) bit-identical to a serial client running the same requests
directly against the index.

Scatter relies on the canonical query-major pair order: a batch
concatenates payloads in request order, so request *i* owns the
contiguous global query-id range ``[offset_i, offset_i + n_i)`` and its
pair slice is found with two ``searchsorted`` probes — no per-pair work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.result import QueryResult
from repro.serve.request import QueryRequest, concat_payloads


@dataclass(frozen=True)
class BatchPolicy:
    """Coalescing knobs.

    ``max_batch`` caps requests per launch (1 = one-request-per-launch,
    the unbatched baseline); ``max_wait`` is how long the scheduler
    lingers for more compatible requests once it holds at least one
    (seconds; 0 dispatches immediately). Waiting only ever happens while
    the queue is empty — an incompatible head closes the batch at once.
    """

    max_batch: int = 32
    max_wait: float = 0.002

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {self.max_wait}")


def take_compatible(pending, max_batch: int) -> list[QueryRequest]:
    """Pop the maximal compatible prefix run (up to ``max_batch``) off the
    pending deque. The caller must hold the queue lock and guarantee the
    deque is non-empty."""
    first = pending.popleft()
    batch = [first]
    key = first.batch_key()
    while pending and len(batch) < max_batch and pending[0].batch_key() == key:
        batch.append(pending.popleft())
    return batch


def execute_batch(index, batch: list[QueryRequest], planner=None) -> QueryResult:
    """Run one coalesced launch for ``batch`` against ``index`` (the
    captured snapshot). Payloads are concatenated in request order.
    ``planner`` is forwarded to :meth:`RTSIndex.query` (the service's
    scheduler passes its configured planning mode)."""
    first = batch[0]
    payload = concat_payloads(first.predicate, [r.payload for r in batch])
    return index.query(first.predicate, payload, k=first.k, planner=planner)


def split_batch(result: QueryResult, batch: list[QueryRequest], epoch: int) -> list[QueryResult]:
    """Scatter a batched result into per-request :class:`QueryResult`\\ s.

    A single-request batch keeps the underlying pairs, phases, counters
    and meta untouched (the property the obs gate's serve mode checks
    bit-for-bit) but wraps them in a *fresh* :class:`QueryResult`: the
    scheduler caches and annotates what this function returns, and
    annotating the execution result in place would leak serving
    bookkeeping into an object other code may still hold (and a stale
    ``epoch``/``batch_size`` already present in its meta — e.g. on a
    result that transited another serving layer — would survive a
    ``setdefault`` and misreport *this* batch). The serving fields are
    therefore set unconditionally on the copy. For larger batches each
    request gets its pair slice with query ids rebased to its own
    payload, simulated phase times attributed proportionally to its
    share of the batch's queries, and the batch totals preserved in
    ``meta``.
    """
    n_total = sum(r.n_queries for r in batch)
    if len(batch) == 1:
        return [
            QueryResult.from_canonical(
                result.rect_ids,
                result.query_ids,
                result.phases,
                {**result.meta, "epoch": epoch, "batch_size": 1, "cache_hit": False},
            )
        ]

    out = []
    offset = 0
    for req in batch:
        lo = int(np.searchsorted(result.query_ids, offset, side="left"))
        hi = int(np.searchsorted(result.query_ids, offset + req.n_queries, side="left"))
        share = req.n_queries / n_total if n_total else 0.0
        phases = {name: v * share for name, v in result.phases.items()}
        meta = {
            "epoch": epoch,
            "batch_size": len(batch),
            "batch_n_queries": n_total,
            "batch_sim_time": result.sim_time,
            "cache_hit": False,
        }
        if "k" in result.meta:
            meta["k"] = result.meta["k"]
        out.append(
            QueryResult(
                result.rect_ids[lo:hi],
                result.query_ids[lo:hi] - offset,
                phases,
                meta,
            )
        )
        offset += req.n_queries
    return out
