"""Epoch-based snapshot publication (single writer, many readers).

The manager owns the *current* published snapshot — an
:class:`~repro.core.index.RTSIndex` that, once published, is never
structurally mutated again. A mutation forks the current snapshot
(copy-on-write, see :meth:`RTSIndex.fork`), applies the operation to the
private fork, and publishes the fork with an atomic reference swap; the
index's own ``epoch`` counter (bumped by every mutation) names the new
version. Readers that captured the old reference keep traversing a
structure no writer will ever touch — there is no torn state to observe
and nothing to lock on the read path.

This is the library analogue of the paper's §4.2 update path: LibRTS
keeps queries running by making updates cheap refits on *existing*
structures; a serving system additionally needs updates to be *invisible*
until complete, which the fork-and-publish step adds on top.
"""

from __future__ import annotations

from repro import tsan
from repro.core.index import RTSIndex
from repro.lockorder import make_lock


@tsan.instrument(containers=("_history", "_evicted"), atomic=("_current",))
class EpochSnapshots:
    """Serializes writers and publishes immutable per-epoch snapshots.

    Parameters
    ----------
    index:
        The seed index; it becomes the epoch-``index.epoch`` snapshot
        as-is (no copy). The caller must stop mutating it directly —
        all mutations go through :meth:`apply`.
    retain_all:
        Keep a reference to every published snapshot, queryable via
        :meth:`at`. Off by default (it pins every epoch's copied
        bookkeeping arrays in memory); the concurrency tests switch it
        on to replay served responses against their exact epoch.
    retain_last:
        Keep only the ``K`` most recent published snapshots queryable
        via :meth:`at` (implies retention). Evicted snapshots are
        explicitly closed — their executor-pool references are released
        at eviction time, not at manager teardown — and :meth:`at`
        raises a clear error naming the eviction policy for them.
        ``retain_all=True`` with ``retain_last`` set keeps the cap.
    """

    def __init__(
        self,
        index: RTSIndex,
        retain_all: bool = False,
        retain_last: int | None = None,
    ):
        if retain_last is not None and retain_last < 1:
            raise ValueError(f"retain_last must be >= 1, got {retain_last}")
        self._current = index
        # Rank 20: held only across fork+apply+publish; the service lock
        # (rank 10) is never held at that point, and op() reaches at
        # most the metrics/pool leaf locks.
        self._write_lock = make_lock("serve.snapshot")
        self.retain_all = bool(retain_all) or retain_last is not None
        self.retain_last = retain_last
        self._history: dict[int, RTSIndex] = (
            {index.epoch: index} if self.retain_all else {}
        )
        self._evicted: set[int] = set()

    @property
    def current(self) -> RTSIndex:
        """The latest published snapshot (atomic reference read).

        Deliberately lock-free: publication is a single reference store
        under the GIL, and a published snapshot is immutable, so any
        reference a reader observes is fully consistent — this is the
        whole point of the epoch design. The runtime sanitizer marks the
        field atomic for the same reason.
        """
        return self._current  # noqa: RTS007 - atomic immutable-reference publish

    @property
    def epoch(self) -> int:
        return self.current.epoch

    def apply(self, op) -> object:
        """Run one mutation ``op(index)`` on a private fork of the current
        snapshot and publish the fork. Writers are serialized by a lock;
        the fork is published only if ``op`` succeeds, so a failed
        mutation (bad ids, degenerate rectangles) leaves the published
        snapshot untouched. With ``retain_last`` set, snapshots evicted
        by the cap are closed here, under the write lock."""
        with self._write_lock:
            fork = self._current.fork()
            out = op(fork)
            self._current = fork
            if self.retain_all:
                self._history[fork.epoch] = fork
                if self.retain_last is not None:
                    while len(self._history) > self.retain_last:
                        oldest = min(self._history)
                        evicted = self._history.pop(oldest)
                        self._evicted.add(oldest)
                        evicted.close()
            return out

    def at(self, epoch: int) -> RTSIndex:
        """The retained snapshot published under ``epoch``.

        Requires retention (``retain_all`` or ``retain_last``). An epoch
        that fell off a ``retain_last`` window raises a ``KeyError``
        naming the policy and the epochs still retained, so callers can
        tell "evicted" apart from "never published"."""
        if not self.retain_all:
            raise RuntimeError("snapshot history not retained; pass retain_all=True")
        # Under the write lock: apply() mutates _history/_evicted while
        # publishing, and an unlocked read could see the new epoch in
        # _evicted before the pop lands in _history (or vice versa).
        with self._write_lock:
            if epoch in self._evicted:
                raise KeyError(
                    f"epoch {epoch} was evicted by retain_last={self.retain_last}; "
                    f"retained epochs: {sorted(self._history)}"
                )
            return self._history[epoch]

    def __repr__(self) -> str:
        with self._write_lock:
            retained = len(self._history)
        return f"EpochSnapshots(epoch={self.epoch}, retained={retained})"
